/**
 * @file
 * Tests for model/hardware specs and the roofline performance model.
 */

#include <gtest/gtest.h>

#include "model/hardware_spec.hh"
#include "model/model_spec.hh"
#include "model/perf_model.hh"

namespace lightllm {
namespace model {
namespace {

TEST(ModelSpecTest, KvBytesPerTokenMatchPublishedShapes)
{
    // 2 (K,V) * layers * kv_heads * head_dim * 2 bytes.
    EXPECT_EQ(ModelSpec::llama2_7b().kvBytesPerToken(), 524288);
    EXPECT_EQ(ModelSpec::llama2_13b().kvBytesPerToken(), 819200);
    // 70B uses grouped-query attention (8 KV heads): smaller
    // per-token KV than 7B despite 10x parameters.
    EXPECT_EQ(ModelSpec::llama2_70b().kvBytesPerToken(), 327680);
}

TEST(ModelSpecTest, WeightBytesScaleWithParams)
{
    EXPECT_EQ(ModelSpec::llama2_7b().weightBytes(),
              2 * 6'738'000'000ll);
    EXPECT_GT(ModelSpec::llama2_70b().weightBytes(),
              5 * ModelSpec::llama2_7b().weightBytes());
}

TEST(ModelSpecTest, MultimodalSpecsCarryImageTokens)
{
    EXPECT_EQ(ModelSpec::qwenVlChat().imageTokens, 256);
    EXPECT_EQ(ModelSpec::llava15_7b().imageTokens, 576);
    EXPECT_EQ(ModelSpec::llava15_13b().imageTokens, 576);
    EXPECT_EQ(ModelSpec::llama2_7b().imageTokens, 0);
}

TEST(HardwareSpecTest, TensorParallelAggregatesMemory)
{
    const auto single = HardwareSpec::a100_80g();
    const auto quad = single.withTensorParallel(4);
    EXPECT_EQ(quad.numDevices, 4);
    EXPECT_EQ(quad.totalMemBytes(), 4 * single.totalMemBytes());
    EXPECT_GT(quad.effectiveBandwidth(),
              3.0 * single.effectiveBandwidth());
    EXPECT_LT(quad.effectiveBandwidth(),
              4.0 * single.effectiveBandwidth());
}

TEST(HardwareSpecTest, SingleDevicePaysNoTpPenalty)
{
    const auto spec = HardwareSpec::a100_80g();
    EXPECT_DOUBLE_EQ(spec.effectiveBandwidth(),
                     spec.memBandwidthPerDevice);
}

TEST(HardwareSpecTest, PlatformOrdering)
{
    // H800 is faster than A100 on both axes; A30 is the slowest.
    EXPECT_GT(HardwareSpec::h800().memBandwidthPerDevice,
              HardwareSpec::a100_80g().memBandwidthPerDevice);
    EXPECT_LT(HardwareSpec::a30().memBandwidthPerDevice,
              HardwareSpec::rtx4090().memBandwidthPerDevice);
}

TEST(PerfModelTest, TokenCapacityIsPlausibleFor7bOnA100)
{
    const PerfModel perf(ModelSpec::llama2_7b(),
                         HardwareSpec::a100_80g());
    // ~(80 GB * 0.92 - 13.5 GB - reserve) / 0.5 MB per token.
    EXPECT_GT(perf.tokenCapacity(), 90'000);
    EXPECT_LT(perf.tokenCapacity(), 130'000);
}

TEST(PerfModelTest, BiggerModelHasSmallerCapacity)
{
    const PerfModel small(ModelSpec::llama2_7b(),
                          HardwareSpec::a100_80g());
    const PerfModel big(ModelSpec::llama2_13b(),
                        HardwareSpec::a100_80g());
    EXPECT_LT(big.tokenCapacity(), small.tokenCapacity());
}

TEST(PerfModelTest, SeventyBillionFitsOnlyWithTensorParallel)
{
    EXPECT_DEATH(PerfModel(ModelSpec::llama2_70b(),
                           HardwareSpec::a100_80g()),
                 "does not fit");
    const PerfModel tp4(ModelSpec::llama2_70b(),
                        HardwareSpec::a100_80g()
                            .withTensorParallel(4));
    EXPECT_GT(tp4.tokenCapacity(), 100'000);
}

TEST(PerfModelTest, PrefillLatencyGrowsWithPromptLength)
{
    const PerfModel perf(ModelSpec::llama2_7b(),
                         HardwareSpec::a100_80g());
    const Tick short_prompt = perf.prefillLatency(128);
    const Tick long_prompt = perf.prefillLatency(4096);
    EXPECT_LT(short_prompt, long_prompt);
}

TEST(PerfModelTest, PrefillMagnitudeIsRealistic)
{
    const PerfModel perf(ModelSpec::llama2_7b(),
                         HardwareSpec::a100_80g());
    // A 2k-token 7B prefill on A100 is commonly reported in the
    // 150-600 ms range.
    const double seconds = ticksToSeconds(perf.prefillLatency(2048));
    EXPECT_GT(seconds, 0.05);
    EXPECT_LT(seconds, 1.0);
}

TEST(PerfModelTest, DecodeLatencyGrowsWithKvFootprint)
{
    const PerfModel perf(ModelSpec::llama2_7b(),
                         HardwareSpec::a100_80g());
    EXPECT_LT(perf.decodeLatency(8, 10'000),
              perf.decodeLatency(8, 100'000));
}

TEST(PerfModelTest, DecodeMagnitudeIsRealistic)
{
    const PerfModel perf(ModelSpec::llama2_7b(),
                         HardwareSpec::a100_80g());
    // Decode with a substantial batch: tens of milliseconds.
    const double seconds =
        ticksToSeconds(perf.decodeLatency(64, 100'000));
    EXPECT_GT(seconds, 0.005);
    EXPECT_LT(seconds, 0.2);
}

TEST(PerfModelTest, WeightStreamingFloorDominatesTinyBatch)
{
    const PerfModel perf(ModelSpec::llama2_7b(),
                         HardwareSpec::a100_80g());
    // Batch 1 with negligible KV is bounded below by streaming the
    // weights once (~6-8 ms at 2 TB/s).
    const double seconds = ticksToSeconds(perf.decodeLatency(1, 64));
    EXPECT_GT(seconds, 0.005);
}

TEST(PerfModelTest, FasterHardwareIsFaster)
{
    const PerfModel a100(ModelSpec::llama2_7b(),
                         HardwareSpec::a100_80g());
    const PerfModel h800(ModelSpec::llama2_7b(),
                         HardwareSpec::h800());
    EXPECT_LT(h800.decodeLatency(32, 50'000),
              a100.decodeLatency(32, 50'000));
    EXPECT_LT(h800.prefillLatency(2048), a100.prefillLatency(2048));
}

TEST(PerfModelTest, FusedStepCostsAtLeastDecode)
{
    const PerfModel perf(ModelSpec::llama2_7b(),
                         HardwareSpec::a100_80g());
    EXPECT_GE(perf.fusedStepLatency(32, 50'000, 512),
              perf.decodeLatency(32, 50'000) -
                  secondsToTicks(0.001));
}

TEST(PerfModelTest, TimeFactorScalesLatency)
{
    PerfModelParams slow_params;
    slow_params.timeFactor = 2.0;
    const PerfModel fast(ModelSpec::llama2_7b(),
                         HardwareSpec::a100_80g());
    const PerfModel slow(ModelSpec::llama2_7b(),
                         HardwareSpec::a100_80g(), slow_params);
    EXPECT_NEAR(
        static_cast<double>(slow.decodeLatency(16, 30'000)),
        2.0 * static_cast<double>(fast.decodeLatency(16, 30'000)),
        2.0);
}

/** Capacity must be positive and monotone in TP degree. */
class TpCapacityProperty : public ::testing::TestWithParam<int>
{};

TEST_P(TpCapacityProperty, CapacityGrowsWithDevices)
{
    const int n = GetParam();
    const PerfModel perf(
        ModelSpec::llama2_13b(),
        HardwareSpec::a100_80g().withTensorParallel(n));
    const PerfModel bigger(
        ModelSpec::llama2_13b(),
        HardwareSpec::a100_80g().withTensorParallel(n + 1));
    EXPECT_GT(perf.tokenCapacity(), 0);
    EXPECT_GT(bigger.tokenCapacity(), perf.tokenCapacity());
}

INSTANTIATE_TEST_SUITE_P(Degrees, TpCapacityProperty,
                         ::testing::Values(1, 2, 3, 4, 6));

} // namespace
} // namespace model
} // namespace lightllm
