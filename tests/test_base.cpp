/**
 * @file
 * Unit tests for the base module: RNG, string helpers, tables.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "base/rng.hh"
#include "base/str_util.hh"
#include "base/table.hh"
#include "base/types.hh"

namespace lightllm {
namespace {

TEST(RngTest, DeterministicForSameSeed)
{
    Rng a(1234);
    Rng b(1234);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int differing = 0;
    for (int i = 0; i < 16; ++i) {
        if (a.nextU64() != b.nextU64())
            ++differing;
    }
    EXPECT_GT(differing, 12);
}

TEST(RngTest, UniformDoubleInHalfOpenUnitInterval)
{
    Rng rng(42);
    for (int i = 0; i < 10000; ++i) {
        const double value = rng.uniformDouble();
        EXPECT_GE(value, 0.0);
        EXPECT_LT(value, 1.0);
    }
}

TEST(RngTest, UniformIntRespectsBounds)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const auto value = rng.uniformInt(-5, 17);
        EXPECT_GE(value, -5);
        EXPECT_LE(value, 17);
    }
}

TEST(RngTest, UniformIntDegenerateRange)
{
    Rng rng(7);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.uniformInt(3, 3), 3);
}

TEST(RngTest, UniformIntCoversAllValues)
{
    Rng rng(11);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.uniformInt(0, 7));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformIntMeanIsCentred)
{
    Rng rng(99);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.uniformInt(0, 100));
    EXPECT_NEAR(sum / n, 50.0, 0.5);
}

TEST(RngTest, NormalMomentsAreStandard)
{
    Rng rng(5);
    double sum = 0.0;
    double sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double value = rng.normal();
        sum += value;
        sq += value * value;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, NormalScalesMeanAndStddev)
{
    Rng rng(6);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.normal(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, LogNormalMedianNearExpMu)
{
    Rng rng(8);
    const int n = 100001;
    std::vector<double> values;
    values.reserve(n);
    for (int i = 0; i < n; ++i)
        values.push_back(rng.logNormal(std::log(300.0), 0.8));
    std::nth_element(values.begin(), values.begin() + n / 2,
                     values.end());
    EXPECT_NEAR(values[n / 2], 300.0, 12.0);
}

TEST(RngTest, ExponentialMeanIsInverseRate)
{
    Rng rng(9);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(4.0);
    EXPECT_NEAR(sum / n, 0.25, 0.005);
}

TEST(RngTest, BernoulliFrequencyMatchesP)
{
    Rng rng(10);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        if (rng.bernoulli(0.3))
            ++hits;
    }
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, SplitProducesIndependentStream)
{
    Rng parent(33);
    Rng child = parent.split();
    // The child stream should not simply mirror the parent.
    int same = 0;
    for (int i = 0; i < 16; ++i) {
        if (parent.nextU64() == child.nextU64())
            ++same;
    }
    EXPECT_LT(same, 4);
}

TEST(TickConversionTest, RoundTripSeconds)
{
    EXPECT_EQ(secondsToTicks(1.0), kTicksPerSecond);
    EXPECT_EQ(secondsToTicks(0.5), kTicksPerSecond / 2);
    EXPECT_DOUBLE_EQ(ticksToSeconds(kTicksPerSecond), 1.0);
    EXPECT_DOUBLE_EQ(ticksToSeconds(secondsToTicks(12.25)), 12.25);
}

TEST(StrUtilTest, SplitKeepsEmptyFields)
{
    const auto fields = splitString("a,,b,", ',');
    ASSERT_EQ(fields.size(), 4u);
    EXPECT_EQ(fields[0], "a");
    EXPECT_EQ(fields[1], "");
    EXPECT_EQ(fields[2], "b");
    EXPECT_EQ(fields[3], "");
}

TEST(StrUtilTest, SplitSingleField)
{
    const auto fields = splitString("hello", ',');
    ASSERT_EQ(fields.size(), 1u);
    EXPECT_EQ(fields[0], "hello");
}

TEST(StrUtilTest, TrimRemovesSurroundingWhitespace)
{
    EXPECT_EQ(trimString("  x y \t\n"), "x y");
    EXPECT_EQ(trimString(""), "");
    EXPECT_EQ(trimString(" \t "), "");
    EXPECT_EQ(trimString("abc"), "abc");
}

TEST(StrUtilTest, FormatDoubleFixedPrecision)
{
    EXPECT_EQ(formatDouble(12.3456, 2), "12.35");
    EXPECT_EQ(formatDouble(1.0, 0), "1");
}

TEST(StrUtilTest, FormatPercent)
{
    EXPECT_EQ(formatPercent(0.1234), "12.34%");
    EXPECT_EQ(formatPercent(1.5, 0), "150%");
}

TEST(StrUtilTest, FormatCountThousandsSeparators)
{
    EXPECT_EQ(formatCount(0), "0");
    EXPECT_EQ(formatCount(999), "999");
    EXPECT_EQ(formatCount(1000), "1,000");
    EXPECT_EQ(formatCount(1234567), "1,234,567");
    EXPECT_EQ(formatCount(-1234567), "-1,234,567");
}

TEST(TextTableTest, AlignsColumns)
{
    TextTable table({"a", "long-header"});
    table.addRow({"xx", "y"});
    const std::string out = table.toString();
    EXPECT_NE(out.find("| a  | long-header |"), std::string::npos);
    EXPECT_NE(out.find("| xx | y           |"), std::string::npos);
}

TEST(TextTableTest, SeparatorRendersDashes)
{
    TextTable table({"c"});
    table.addRow({"1"});
    table.addSeparator();
    table.addRow({"2"});
    const std::string out = table.toString();
    // Header separator plus the explicit one.
    std::size_t count = 0;
    std::size_t pos = 0;
    while ((pos = out.find("|---", pos)) != std::string::npos) {
        ++count;
        pos += 4;
    }
    EXPECT_EQ(count, 2u);
}

TEST(TextTableDeathTest, RowArityMismatchPanics)
{
    TextTable table({"a", "b"});
    EXPECT_DEATH(table.addRow({"only-one"}), "row has");
}

} // namespace
} // namespace lightllm
