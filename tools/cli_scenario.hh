/**
 * @file
 * Scenario assembly for the `pfs` command-line runner.
 *
 * The benches hard-code their workload / scheduler / engine / SLA
 * combinations; this header exposes the same composition as data so
 * one binary can be pointed at any scenario from flags. Parsing and
 * assembly are separated from main() so tests can cover the
 * flag-to-config path without spawning a process.
 */

#ifndef LIGHTLLM_TOOLS_CLI_SCENARIO_HH
#define LIGHTLLM_TOOLS_CLI_SCENARIO_HH

#include <cstdint>
#include <iosfwd>
#include <string>

#include <vector>

#include "autoscale/autoscaler.hh"
#include "base/types.hh"
#include "cluster/serving_cluster.hh"
#include "core/scheduler_factory.hh"
#include "disagg/disagg_cluster.hh"
#include "engine/engine_config.hh"
#include "metrics/report.hh"
#include "metrics/sla.hh"
#include "model/perf_model.hh"
#include "trace/trace_event.hh"
#include "workload/datasets.hh"
#include "workload/rate_schedule.hh"
#include "workload/session_gen.hh"

namespace lightllm {
namespace cli {

/** Everything configurable from the command line, as raw values. */
struct CliOptions
{
    // Workload.
    std::string workload = "sharegpt";
    std::size_t requests = 512;
    std::uint64_t seed = 42;

    // Multi-turn session workload (closed loop by construction):
    // active when sessions > 0, replacing --workload/--requests/
    // --clients. Each session shares the global system prompt and
    // prepends its full history to every turn.
    std::size_t sessions = 0;
    std::size_t turns = 4;
    TokenCount systemPromptTokens = 512;

    /** Shared-prefix KV reuse: "on" | "off" (default off — the
     *  bit-exact legacy path). */
    std::string prefixCache = "off";

    // Load generation: closed-loop clients by default; a positive
    // rate switches to open-loop Poisson arrivals, and a rate
    // schedule to open-loop time-varying arrivals.
    std::size_t clients = 32;
    double poissonRate = 0.0;
    double thinkSeconds = 0.0;

    /** Time-varying arrival schedule spec (see parseRateSchedule:
     *  const:R | steps:... | spike:... | diurnal:...); empty keeps
     *  the --rate / closed-loop behaviour. */
    std::string rateSchedule;

    // Scheduler.
    std::string scheduler = "past_future";
    double overcommit = 1.0;
    double watermark = 0.95;
    double reservedRatio = 0.03;
    std::size_t windowSize = 1000;

    // Queue ordering and priority classes.
    std::string queuePolicy = "fcfs";

    /** Comma-separated class shares, lowest class first (e.g.
     *  "0.8,0.2" = 80% priority 0, 20% priority 1); empty keeps
     *  every request at priority 0. */
    std::string priorityMix;

    // Multi-tenant composition and the tenant scheduler tree.

    /** Number of tenants drawing the workload's requests (0 =
     *  single-tenant legacy; ids are 0..N-1). */
    std::size_t tenants = 0;

    /** Zipf exponent of the tenant traffic shares (0 = uniform). */
    double tenantZipf = 0.0;

    /** Explicit comma-separated tenant shares (overrides the Zipf
     *  shape; count must equal --tenants). */
    std::string tenantWeights;

    /** Route scheduling through the per-tenant fair tree (weights
     *  follow the traffic shares); off keeps the flat bit-exact
     *  pipeline. */
    bool tenantTree = false;

    // Model / hardware.
    std::string model = "llama2-7b";
    std::string hardware = "a100-80g";
    int tensorParallel = 1;

    /** Dataset CSV (with an arrival_us column) replayed at its
     *  recorded timestamps; replaces --workload/--requests and the
     *  synthetic load generators. */
    std::string traceReplay;

    // Fleet (cluster co-simulation when instances > 1).
    std::size_t instances = 1;

    /** Compute threads for fleet/disagg co-simulation (default 1 =
     *  the classic single-queue loop; K > 1 shards the engines
     *  across a ShardedSimContext with bit-identical results). */
    std::size_t simThreads = 1;

    // Disaggregated prefill/decode serving (src/disagg). The knobs
    // use 0 / -1 sentinels so "needs --disagg" is diagnosable: with
    // --disagg they resolve to one instance per pool, a 64-deep
    // handoff queue, and the hardware interconnect profile.
    bool disagg = false;
    std::size_t prefillInstances = 0;
    std::size_t decodeInstances = 0;
    std::size_t handoffDepth = 0;
    double linkGbps = 0.0;
    double linkLatencySeconds = -1.0;

    /** Routing policy name (see cluster::parseRoutingPolicy);
     *  empty = future-memory. Only meaningful with instances > 1. */
    std::string routing;

    /** Comma-separated per-instance hardware, each `name[:count]`
     *  (e.g. "a100-80g:2,a30:2"); counts must sum to --instances.
     *  Empty = every instance uses --hardware. */
    std::string platformMix;

    /** Drain instance 0 at this many simulated seconds (0 = never);
     *  its queued requests re-dispatch through the router. */
    double drainAtSeconds = 0.0;

    // Elastic autoscaling (forces a cluster even at --instances 1).
    bool autoscale = false;
    std::size_t minInstances = 1;
    std::size_t maxInstances = 8;

    /** Cold-start delay of a provisioned instance, seconds. */
    double provisionDelaySeconds = 10.0;

    /** Scale policy name: "reactive" | "predictive". */
    std::string scalePolicy = "predictive";

    /** TTFT/MTPOT attainment target the controller defends. */
    double scaleSloTarget = 0.9;

    /** Overload admission control at max scale: "never" |
     *  "overload" (see autoscale::ShedPolicy). */
    std::string shedPolicy = "never";

    // SLA: 0 means "derive from model size" (paper defaults).
    double ttftLimitSeconds = 0.0;
    double mtpotLimitSeconds = 0.0;

    // Engine.
    TokenCount blockSize = 16;
    bool splitFuse = false;
    std::size_t maxBatchSize = 0;
    std::string evictionPolicy = "lifo";
    std::string evictionMode = "recompute";
    std::size_t warmupRequests = 0;

    // Run limits.
    std::size_t maxFinishedRequests = 0;
    double maxSimSeconds = 0.0;

    // Output.
    std::string format = "table";
    std::string csvPath;

    // Flight recorder (src/trace). Tracing is off unless --trace-out
    // names a file; the recorder observes but never steers, so the
    // RunReport stays byte-identical (pinned by test_trace).

    /** Chrome trace-event JSON output path (empty = tracing off);
     *  a per-request timeline also lands at PATH.requests.csv. */
    std::string traceOut;

    /** Capture level: off | requests | steps | full. Empty defaults
     *  to "requests" when --trace-out is set. */
    std::string traceDetail;

    /** Ring capacity per sink, in events (0 = the 65536 default). */
    std::size_t traceLimit = 0;

    bool showHelp = false;
};

/**
 * Parse argv into `options`.
 *
 * @return Empty string on success, otherwise a diagnostic naming the
 *         offending flag (the options are then unspecified).
 */
std::string parseCliArgs(int argc, const char *const *argv,
                         CliOptions &options);

/** Flag reference printed by --help. */
void printCliUsage(std::ostream &os);

/**
 * Every flag parseCliArgs accepts (valued and boolean alike), for
 * the usage-completeness audit: each name must appear in
 * printCliUsage's output.
 */
std::vector<std::string> cliFlagNames();

/** A fully assembled, runnable scenario. */
struct Scenario
{
    /** Empty (bar the name) in session mode. */
    workload::Dataset dataset;

    /** Session workload; meaningful when sessionMode is set. */
    bool sessionMode = false;
    workload::SessionWorkloadConfig sessionConfig;
    core::SchedulerConfig schedulerConfig;
    model::PerfModel perf;
    metrics::SlaSpec sla;
    engine::EngineConfig engineConfig;
    engine::RunLimits limits;

    std::size_t clients = 0;
    double poissonRate = 0.0;
    Tick thinkTime = 0;
    std::uint64_t seed = 0;

    /** Per-instance performance models; populated (and sized to
     *  --instances) only for fleet scenarios. Empty = one engine
     *  driven by `perf` (the bit-exact single-instance path). */
    std::vector<model::PerfModel> fleetPerfs;
    cluster::RoutingPolicy routing =
        cluster::RoutingPolicy::FutureMemory;

    /** Drain instance 0 at this tick (0 = never). */
    Tick drainAt = 0;

    /** Sharded co-simulation threads (fleet/disagg paths only;
     *  1 = the classic single-queue loop). */
    std::uint32_t simThreads = 1;

    /** Open-loop time-varying arrivals when set. */
    bool hasRateSchedule = false;
    workload::RateSchedule rateSchedule =
        workload::RateSchedule::constant(1.0);

    /** Elastic autoscaling (cluster path, possibly from a fleet of
     *  one). */
    bool autoscale = false;
    autoscale::AutoscaleConfig autoscaleConfig;
    std::string scalePolicyName;

    /** Tenant count of the workload (0 = single tenant); gates the
     *  per-tenant report breakdown. */
    std::size_t tenants = 0;

    /** Open-loop replay of the dataset's recorded arrival ticks. */
    bool traceReplay = false;

    /** Disaggregated prefill/decode fleet (src/disagg); the config
     *  arrives fully resolved (hardware interconnect profile +
     *  overrides applied at assembly). */
    bool disagg = false;
    std::size_t prefillInstances = 1;
    std::size_t decodeInstances = 1;
    disagg::DisaggConfig disaggConfig;

    /** Flight-recorder output path (empty = tracing off); the
     *  exported JSON lands here and the per-request timeline at
     *  `traceOut + ".requests.csv"`. */
    std::string traceOut;

    /** Capture level; Off leaves every trace hook a dead branch. */
    trace::TraceDetail traceDetail = trace::TraceDetail::Off;

    /** Ring capacity per sink, in events. */
    std::size_t traceLimit = 65536;
};

/**
 * Turn parsed options into a runnable scenario.
 *
 * @throws std::invalid_argument naming the option when a name
 *         (workload, scheduler, model, hardware, ...) is unknown.
 */
Scenario assembleScenario(const CliOptions &options);

/** Run the scenario's simulation to completion. When the scenario
 *  enables tracing, a recorder is created for the run and the trace
 *  files are written next to returning the report. */
metrics::RunReport runScenario(const Scenario &scenario);

/**
 * As above, but record into a caller-owned recorder (may be null)
 * and skip the file export — tests compare traces in memory. The
 * recorder must outlive the call; pass one whose detail matches the
 * scenario's.
 */
metrics::RunReport runScenario(const Scenario &scenario,
                               trace::TraceRecorder *recorder);

/** Render the report per options.format / options.csvPath. */
void emitReport(std::ostream &os, const CliOptions &options,
                const Scenario &scenario,
                const metrics::RunReport &report);

} // namespace cli
} // namespace lightllm

#endif // LIGHTLLM_TOOLS_CLI_SCENARIO_HH
