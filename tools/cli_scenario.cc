#include "cli_scenario.hh"

#include <algorithm>
#include <cctype>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "base/logging.hh"
#include "base/str_util.hh"
#include "base/table.hh"
#include "engine/serving_engine.hh"
#include "metrics/report_io.hh"
#include "sim/sharded_sim_context.hh"
#include "sim/sim_context.hh"
#include "trace/trace_recorder.hh"
#include "workload/arrivals.hh"
#include "workload/client_pool.hh"
#include "workload/tenant_mix.hh"
#include "workload/trace_gen.hh"
#include "workload/trace_io.hh"

namespace lightllm {
namespace cli {

namespace {

/** Parse helpers that reject trailing junk ("64x" is not a number)
 *  and signs ("-1" would silently wrap through std::stoull). */
bool
parseUnsigned(const std::string &text, std::uint64_t &out)
{
    if (text.empty() || !std::isdigit(
                            static_cast<unsigned char>(text[0])))
        return false;
    try {
        std::size_t used = 0;
        out = std::stoull(text, &used);
        return used == text.size();
    } catch (const std::exception &) {
        return false;
    }
}

bool
parseDouble(const std::string &text, double &out)
{
    try {
        std::size_t used = 0;
        out = std::stod(text, &used);
        return used == text.size();
    } catch (const std::exception &) {
        return false;
    }
}

using workload::traceToDataset;

workload::Dataset
makeWorkload(const std::string &name, std::size_t n,
             std::uint64_t seed, TokenCount image_tokens)
{
    if (name == "sharegpt")
        return workload::makeShareGpt(n, seed);
    if (name == "sharegpt-o1")
        return workload::makeShareGptO1(n, seed);
    if (name == "dist1")
        return workload::makeDistribution1(n, seed);
    if (name == "dist2")
        return workload::makeDistribution2(n, seed);
    if (name == "dist3")
        return workload::makeDistribution3(n, seed);
    if (name == "textvqa")
        return workload::makeTextVqaLike(n, image_tokens, seed);
    if (name == "trace-conversation")
        return traceToDataset(workload::makeConversationTrace(n, seed),
                              2048);
    if (name == "trace-api")
        return traceToDataset(workload::makeApiTrace(n, seed), 2048);
    if (name == "trace-code")
        return traceToDataset(
            workload::makeCodeCompletionTrace(n, seed), 512);
    if (name == "trace-longdoc")
        return traceToDataset(workload::makeLongDocTrace(n, seed),
                              2048);
    throw std::invalid_argument("unknown workload: " + name);
}

core::SchedulerConfig
makeSchedulerConfig(const CliOptions &options)
{
    core::SchedulerConfig config;
    if (options.scheduler == "past_future") {
        config = core::SchedulerConfig::pastFutureDefault(
            options.reservedRatio);
        config.pastFuture.windowSize = options.windowSize;
    } else if (options.scheduler == "aggressive") {
        config = core::SchedulerConfig::aggressive(options.watermark);
    } else if (options.scheduler == "conservative") {
        config = core::SchedulerConfig::conservative(
            options.overcommit);
    } else if (options.scheduler == "oracle") {
        config = core::SchedulerConfig::oracle();
    } else {
        throw std::invalid_argument("unknown scheduler: " +
                                    options.scheduler);
    }
    return config;
}

model::ModelSpec
makeModelSpec(const std::string &name)
{
    if (name == "llama2-7b")
        return model::ModelSpec::llama2_7b();
    if (name == "llama2-13b")
        return model::ModelSpec::llama2_13b();
    if (name == "llama2-70b")
        return model::ModelSpec::llama2_70b();
    if (name == "qwen-vl-chat")
        return model::ModelSpec::qwenVlChat();
    if (name == "llava15-7b")
        return model::ModelSpec::llava15_7b();
    if (name == "llava15-13b")
        return model::ModelSpec::llava15_13b();
    throw std::invalid_argument("unknown model: " + name);
}

model::HardwareSpec
makeHardwareSpec(const std::string &name, int tensor_parallel)
{
    model::HardwareSpec spec = [&] {
        if (name == "a100-80g")
            return model::HardwareSpec::a100_80g();
        if (name == "h800")
            return model::HardwareSpec::h800();
        if (name == "rtx4090")
            return model::HardwareSpec::rtx4090();
        if (name == "a30")
            return model::HardwareSpec::a30();
        throw std::invalid_argument("unknown hardware: " + name);
    }();
    if (tensor_parallel > 1)
        spec = spec.withTensorParallel(tensor_parallel);
    return spec;
}

metrics::SlaSpec
makeSla(const CliOptions &options)
{
    metrics::SlaSpec sla = options.model == "llama2-70b"
        ? metrics::SlaSpec::large70b()
        : metrics::SlaSpec::small7b13b();
    if (options.ttftLimitSeconds > 0.0)
        sla.ttftLimit = secondsToTicks(options.ttftLimitSeconds);
    if (options.mtpotLimitSeconds > 0.0)
        sla.mtpotLimit = secondsToTicks(options.mtpotLimitSeconds);
    return sla;
}

/** Parse "--priority-mix 0.8,0.2"-style class shares. */
std::vector<double>
parsePriorityMix(const std::string &text)
{
    std::vector<double> shares;
    double total = 0.0;
    for (const std::string &field : splitString(text, ',')) {
        double share = 0.0;
        if (!parseDouble(std::string(trimString(field)), share) ||
            share < 0.0) {
            throw std::invalid_argument("bad priority mix: " + text);
        }
        shares.push_back(share);
        total += share;
    }
    if (total <= 0.0)
        throw std::invalid_argument("bad priority mix: " + text);
    return shares;
}

/** Build the tenant mix from --tenants/--tenant-zipf/
 *  --tenant-weights (weights validated against the tenant count). */
workload::TenantMix
makeTenantMix(const CliOptions &options)
{
    workload::TenantMix mix;
    mix.numTenants = options.tenants;
    mix.zipfExponent = options.tenantZipf;
    if (!options.tenantWeights.empty()) {
        for (const std::string &field :
             splitString(options.tenantWeights, ',')) {
            double weight = 0.0;
            if (!parseDouble(std::string(trimString(field)),
                             weight) ||
                weight <= 0.0) {
                throw std::invalid_argument(
                    "bad tenant weights: " + options.tenantWeights);
            }
            mix.weights.push_back(weight);
        }
        if (mix.weights.size() != options.tenants) {
            throw std::invalid_argument(
                "tenant weights name " +
                std::to_string(mix.weights.size()) +
                " tenants but --tenants is " +
                std::to_string(options.tenants));
        }
    }
    return mix;
}

/**
 * Expand "--platform-mix a100-80g:2,a30:2" into one hardware name
 * per instance (a bare name counts once).
 */
std::vector<std::string>
expandPlatformMix(const std::string &text, std::size_t instances)
{
    std::vector<std::string> names;
    for (const std::string &field : splitString(text, ',')) {
        std::string entry(trimString(field));
        std::uint64_t count = 1;
        const auto colon = entry.find(':');
        if (colon != std::string::npos) {
            if (!parseUnsigned(entry.substr(colon + 1), count) ||
                count == 0) {
                throw std::invalid_argument("bad platform mix: " +
                                            text);
            }
            entry = entry.substr(0, colon);
        }
        if (entry.empty())
            throw std::invalid_argument("bad platform mix: " + text);
        // Bound before expanding: a bogus huge count must fail with
        // a diagnostic, not materialize billions of strings.
        if (count > instances - names.size()) {
            throw std::invalid_argument(
                "platform mix names more than the " +
                std::to_string(instances) + " --instances");
        }
        for (std::uint64_t i = 0; i < count; ++i)
            names.push_back(entry);
    }
    if (names.size() != instances) {
        throw std::invalid_argument(
            "platform mix names " + std::to_string(names.size()) +
            " instances but --instances is " +
            std::to_string(instances));
    }
    return names;
}

engine::EngineConfig
makeEngineConfig(const CliOptions &options)
{
    engine::EngineConfig config;
    config.blockSize = options.blockSize;
    config.splitFuse = options.splitFuse;
    config.maxBatchSize = options.maxBatchSize;
    config.warmupRequests = options.warmupRequests;

    if (options.prefixCache == "on")
        config.prefixCache = true;
    else if (options.prefixCache == "off")
        config.prefixCache = false;
    else
        throw std::invalid_argument("unknown prefix-cache mode: " +
                                    options.prefixCache);

    if (options.evictionPolicy == "lifo")
        config.evictionPolicy = engine::EvictionPolicy::Lifo;
    else if (options.evictionPolicy == "fifo")
        config.evictionPolicy = engine::EvictionPolicy::Fifo;
    else
        throw std::invalid_argument("unknown eviction policy: " +
                                    options.evictionPolicy);

    if (options.evictionMode == "recompute")
        config.evictionMode = engine::EvictionMode::Recompute;
    else if (options.evictionMode == "swap")
        config.evictionMode = engine::EvictionMode::Swap;
    else
        throw std::invalid_argument("unknown eviction mode: " +
                                    options.evictionMode);
    return config;
}

/** Flags taking no value. */
constexpr const char *kBooleanFlags[] = {"--autoscale", "--disagg",
                                         "--split-fuse",
                                         "--tenant-tree", "--help"};

/**
 * Bindings of every valued flag to its slot in `options`. Shared by
 * parseCliArgs and cliFlagNames so the usage audit can never miss a
 * flag that parsing accepts.
 */
std::map<std::string, std::function<bool(const std::string &)>>
valuedFlagBindings(CliOptions &options)
{
    std::map<std::string, std::function<bool(const std::string &)>>
        valued;

    auto bind_string = [](std::string &slot) {
        return [&slot](const std::string &value) {
            slot = value;
            return true;
        };
    };
    auto bind_size = [](std::size_t &slot) {
        return [&slot](const std::string &value) {
            std::uint64_t parsed = 0;
            if (!parseUnsigned(value, parsed))
                return false;
            slot = static_cast<std::size_t>(parsed);
            return true;
        };
    };
    auto bind_double = [](double &slot) {
        return [&slot](const std::string &value) {
            return parseDouble(value, slot);
        };
    };

    valued["--workload"] = bind_string(options.workload);
    valued["--requests"] = bind_size(options.requests);
    valued["--seed"] = [&options](const std::string &value) {
        return parseUnsigned(value, options.seed);
    };
    valued["--sessions"] = bind_size(options.sessions);
    valued["--turns"] = bind_size(options.turns);
    valued["--system-prompt-tokens"] =
        [&options](const std::string &value) {
            std::uint64_t parsed = 0;
            if (!parseUnsigned(value, parsed) || parsed == 0)
                return false;
            options.systemPromptTokens =
                static_cast<TokenCount>(parsed);
            return true;
        };
    valued["--prefix-cache"] = bind_string(options.prefixCache);
    valued["--clients"] = bind_size(options.clients);
    valued["--rate"] = bind_double(options.poissonRate);
    valued["--think-time"] = bind_double(options.thinkSeconds);
    valued["--scheduler"] = bind_string(options.scheduler);
    valued["--overcommit"] = bind_double(options.overcommit);
    valued["--watermark"] = bind_double(options.watermark);
    valued["--reserved-ratio"] = bind_double(options.reservedRatio);
    valued["--window-size"] = bind_size(options.windowSize);
    valued["--queue-policy"] = bind_string(options.queuePolicy);
    valued["--priority-mix"] = bind_string(options.priorityMix);
    valued["--tenants"] = bind_size(options.tenants);
    valued["--tenant-zipf"] = bind_double(options.tenantZipf);
    valued["--tenant-weights"] = bind_string(options.tenantWeights);
    valued["--model"] = bind_string(options.model);
    valued["--hardware"] = bind_string(options.hardware);
    valued["--tp"] = [&options](const std::string &value) {
        std::uint64_t parsed = 0;
        if (!parseUnsigned(value, parsed) || parsed == 0)
            return false;
        options.tensorParallel = static_cast<int>(parsed);
        return true;
    };
    valued["--instances"] = bind_size(options.instances);
    valued["--sim-threads"] = bind_size(options.simThreads);
    valued["--prefill-instances"] =
        bind_size(options.prefillInstances);
    valued["--decode-instances"] =
        bind_size(options.decodeInstances);
    valued["--handoff-depth"] = bind_size(options.handoffDepth);
    valued["--link-gbps"] = bind_double(options.linkGbps);
    valued["--link-latency"] =
        bind_double(options.linkLatencySeconds);
    valued["--trace-replay"] = bind_string(options.traceReplay);
    valued["--routing"] = bind_string(options.routing);
    valued["--platform-mix"] = bind_string(options.platformMix);
    valued["--drain-at"] = bind_double(options.drainAtSeconds);
    valued["--min-instances"] = bind_size(options.minInstances);
    valued["--max-instances"] = bind_size(options.maxInstances);
    valued["--provision-delay"] =
        bind_double(options.provisionDelaySeconds);
    valued["--scale-policy"] = bind_string(options.scalePolicy);
    valued["--scale-slo-target"] =
        bind_double(options.scaleSloTarget);
    valued["--shed-policy"] = bind_string(options.shedPolicy);
    valued["--rate-schedule"] = bind_string(options.rateSchedule);
    valued["--ttft-limit"] = bind_double(options.ttftLimitSeconds);
    valued["--mtpot-limit"] = bind_double(options.mtpotLimitSeconds);
    valued["--block-size"] = [&options](const std::string &value) {
        std::uint64_t parsed = 0;
        if (!parseUnsigned(value, parsed) || parsed == 0)
            return false;
        options.blockSize = static_cast<TokenCount>(parsed);
        return true;
    };
    valued["--max-batch"] = bind_size(options.maxBatchSize);
    valued["--eviction-policy"] =
        bind_string(options.evictionPolicy);
    valued["--eviction-mode"] = bind_string(options.evictionMode);
    valued["--warmup"] = bind_size(options.warmupRequests);
    valued["--max-requests"] = bind_size(options.maxFinishedRequests);
    valued["--max-seconds"] = bind_double(options.maxSimSeconds);
    valued["--format"] = bind_string(options.format);
    valued["--csv"] = bind_string(options.csvPath);
    valued["--trace-out"] = bind_string(options.traceOut);
    valued["--trace-detail"] = bind_string(options.traceDetail);
    valued["--trace-limit"] =
        [&options](const std::string &value) {
            std::uint64_t parsed = 0;
            if (!parseUnsigned(value, parsed) || parsed == 0)
                return false;
            options.traceLimit = static_cast<std::size_t>(parsed);
            return true;
        };
    return valued;
}

} // namespace

std::vector<std::string>
cliFlagNames()
{
    CliOptions scratch;
    std::vector<std::string> names;
    for (const auto &[name, binding] : valuedFlagBindings(scratch))
        names.push_back(name);
    for (const char *name : kBooleanFlags)
        names.push_back(name);
    return names;
}

std::string
parseCliArgs(int argc, const char *const *argv, CliOptions &options)
{
    // Flags taking a value, keyed by name.
    const std::map<std::string,
                   std::function<bool(const std::string &)>>
        valued = valuedFlagBindings(options);

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            options.showHelp = true;
            return "";
        }
        if (arg == "--split-fuse") {
            options.splitFuse = true;
            continue;
        }
        if (arg == "--autoscale") {
            options.autoscale = true;
            continue;
        }
        if (arg == "--disagg") {
            options.disagg = true;
            continue;
        }
        if (arg == "--tenant-tree") {
            options.tenantTree = true;
            continue;
        }

        // Accept both "--flag value" and "--flag=value".
        std::string value;
        auto eq = arg.find('=');
        if (eq != std::string::npos) {
            value = arg.substr(eq + 1);
            arg = arg.substr(0, eq);
        }
        auto it = valued.find(arg);
        if (it == valued.end())
            return "unknown flag: " + arg;
        if (eq == std::string::npos) {
            if (i + 1 >= argc)
                return "missing value for " + arg;
            value = argv[++i];
        }
        if (!it->second(value))
            return "bad value for " + arg + ": " + value;
    }

    if (options.format != "table" && options.format != "json" &&
        options.format != "both")
        return "bad value for --format: " + options.format;
    if (options.prefixCache != "on" && options.prefixCache != "off")
        return "bad value for --prefix-cache: " +
            options.prefixCache + " (use on | off)";
    if (options.sessions > 0) {
        if (options.turns == 0)
            return "--turns must be positive";
        if (options.poissonRate > 0.0)
            return "--rate is open-loop; the session workload is "
                   "closed-loop by construction";
        if (!options.rateSchedule.empty())
            return "--rate-schedule is open-loop; the session "
                   "workload is closed-loop by construction";
        if (!options.priorityMix.empty())
            return "--priority-mix applies to dataset workloads, "
                   "not --sessions";
        if (options.tenants > 0)
            return "--tenants applies to dataset workloads, not "
                   "--sessions";
    }
    if (!options.traceReplay.empty()) {
        if (options.sessions > 0)
            return "--trace-replay replays a recorded dataset; "
                   "exclusive with --sessions";
        if (options.poissonRate > 0.0)
            return "--trace-replay replays measured arrivals; "
                   "exclusive with --rate";
        if (!options.rateSchedule.empty())
            return "--trace-replay replays measured arrivals; "
                   "exclusive with --rate-schedule";
    }
    if (options.disagg) {
        if (options.sessions > 0)
            return "--disagg serves dataset workloads; --sessions "
                   "is not supported";
        if (options.instances > 1)
            return "--disagg sizes the fleet with "
                   "--prefill-instances/--decode-instances, not "
                   "--instances";
        if (!options.routing.empty())
            return "--disagg fixes routing (prefill-load into the "
                   "prefill pool, future-memory into the decode "
                   "pool)";
        if (!options.platformMix.empty())
            return "--platform-mix is colocated-fleet only; "
                   "--disagg pools share --hardware";
        if (options.drainAtSeconds > 0.0)
            return "--drain-at composes with colocated fleets; "
                   "drain a disagg pool programmatically";
        if (options.maxFinishedRequests > 0 ||
            options.maxSimSeconds > 0.0)
            return "run limits (--max-requests/--max-seconds) are "
                   "single-instance only; --disagg runs two pools";
        if (options.linkGbps < 0.0)
            return "--link-gbps must be non-negative";
    } else {
        if (options.prefillInstances > 0)
            return "--prefill-instances needs --disagg";
        if (options.decodeInstances > 0)
            return "--decode-instances needs --disagg";
        if (options.handoffDepth > 0)
            return "--handoff-depth needs --disagg";
        if (options.linkGbps != 0.0)
            return "--link-gbps needs --disagg";
        if (options.linkLatencySeconds >= 0.0)
            return "--link-latency needs --disagg";
    }
    if (options.tenants == 0) {
        if (options.tenantTree)
            return "--tenant-tree needs --tenants";
        if (options.tenantZipf != 0.0)
            return "--tenant-zipf needs --tenants";
        if (!options.tenantWeights.empty())
            return "--tenant-weights needs --tenants";
    }
    if (options.tenantZipf < 0.0)
        return "--tenant-zipf must be non-negative";
    if (options.tenantZipf > 0.0 && !options.tenantWeights.empty())
        return "--tenant-zipf and --tenant-weights are exclusive "
               "(explicit weights already fix the shares)";
    if (!options.rateSchedule.empty() && options.poissonRate > 0.0)
        return "--rate and --rate-schedule are exclusive (a "
               "schedule already fixes the arrival process)";
    if (options.autoscale) {
        if (options.minInstances == 0)
            return "--min-instances must be at least 1";
        if (options.minInstances > options.maxInstances)
            return "--min-instances exceeds --max-instances";
        if (options.disagg) {
            const std::size_t prefill =
                options.prefillInstances == 0
                ? 1 : options.prefillInstances;
            const std::size_t decode =
                options.decodeInstances == 0
                ? 1 : options.decodeInstances;
            if (prefill < options.minInstances ||
                prefill > options.maxInstances ||
                decode < options.minInstances ||
                decode > options.maxInstances)
                return "--prefill-instances/--decode-instances "
                       "must start inside [--min-instances, "
                       "--max-instances]";
        } else if (options.instances < options.minInstances ||
                   options.instances > options.maxInstances) {
            return "--instances must start inside "
                   "[--min-instances, --max-instances]";
        }
        if (options.provisionDelaySeconds < 0.0)
            return "--provision-delay must be non-negative";
        if (options.scaleSloTarget <= 0.0 ||
            options.scaleSloTarget > 1.0)
            return "--scale-slo-target must be in (0, 1]";
        if (options.maxFinishedRequests > 0 ||
            options.maxSimSeconds > 0.0)
            return "run limits (--max-requests/--max-seconds) are "
                   "single-instance only; --autoscale runs a "
                   "cluster";
        if (options.drainAtSeconds > 0.0)
            return "--drain-at composes with static fleets; "
                   "--autoscale manages drains itself";
        if (options.shedPolicy != "never" &&
            options.poissonRate <= 0.0 &&
            options.rateSchedule.empty() &&
            options.traceReplay.empty()) {
            return "--shed-policy overload needs open-loop load "
                   "(--rate, --rate-schedule, or --trace-replay): "
                   "a shed request gets no completion, so "
                   "closed-loop clients and sessions would stall "
                   "on it";
        }
    } else if (options.shedPolicy != "never") {
        return "--shed-policy needs --autoscale (shedding guards "
               "the fleet's max scale)";
    }
    if (options.requests == 0)
        return "--requests must be positive";
    if (options.clients == 0 && options.poissonRate <= 0.0 &&
        options.rateSchedule.empty() && options.traceReplay.empty())
        return "--clients must be positive in closed-loop mode";
    if (options.thinkSeconds < 0.0)
        return "--think-time must be non-negative";
    if (options.poissonRate < 0.0)
        return "--rate must be non-negative";
    if (options.maxSimSeconds < 0.0)
        return "--max-seconds must be non-negative";
    if (options.instances == 0)
        return "--instances must be positive";
    if (options.simThreads == 0)
        return "--sim-threads must be positive";
    if (options.simThreads > 1 && options.instances < 2 &&
        !options.autoscale && !options.disagg)
        return "--sim-threads needs a co-simulated fleet "
               "(--instances >= 2, --autoscale, or --disagg); the "
               "single-engine path is self-clocked";
    if (options.drainAtSeconds < 0.0)
        return "--drain-at must be non-negative";
    if (options.instances > 1 &&
        (options.maxFinishedRequests > 0 ||
         options.maxSimSeconds > 0.0)) {
        return "run limits (--max-requests/--max-seconds) are "
               "single-instance only";
    }
    if (options.drainAtSeconds > 0.0 && options.instances < 2)
        return "--drain-at needs --instances >= 2 to re-dispatch";
    if (!options.platformMix.empty() && options.instances < 2)
        return "--platform-mix needs --instances >= 2 (use "
               "--hardware for a single instance)";
    if (!options.routing.empty() && options.instances < 2 &&
        !options.autoscale)
        return "--routing needs --instances >= 2 or --autoscale "
               "(a single static instance has nothing to route "
               "across)";
    if (!options.traceDetail.empty()) {
        trace::TraceDetail detail = trace::TraceDetail::Off;
        if (!trace::parseTraceDetail(options.traceDetail, &detail))
            return "bad value for --trace-detail: " +
                options.traceDetail +
                " (use off | requests | steps | full)";
        if (detail != trace::TraceDetail::Off &&
            options.traceOut.empty())
            return "--trace-detail needs --trace-out";
    }
    if (options.traceLimit > 0 && options.traceOut.empty())
        return "--trace-limit needs --trace-out";
    return "";
}

void
printCliUsage(std::ostream &os)
{
    os <<
        "pfs_cli — run one serving scenario and report metrics\n"
        "\n"
        "Workload:\n"
        "  --workload NAME     sharegpt | sharegpt-o1 | dist1 | dist2\n"
        "                      | dist3 | textvqa | trace-conversation\n"
        "                      | trace-api | trace-code | trace-longdoc\n"
        "  --requests N        dataset size (default 512)\n"
        "  --seed N            RNG seed (default 42)\n"
        "  --clients N         closed-loop client count (default 32)\n"
        "  --rate R            open-loop Poisson arrivals/sec\n"
        "                      (overrides closed loop)\n"
        "  --rate-schedule S   open-loop time-varying arrivals:\n"
        "                      const:R | steps:RxS,... |\n"
        "                      spike:BASE,PEAK,AT,DUR |\n"
        "                      diurnal:BASE,AMP,PERIOD[,STEPS\n"
        "                      [,CYCLES]] (seconds; exclusive\n"
        "                      with --rate)\n"
        "  --think-time S      closed-loop (and per-turn session)\n"
        "                      think time, seconds\n"
        "  --trace-replay PATH replay a dataset CSV carrying an\n"
        "                      arrival_us column at its recorded\n"
        "                      timestamps (replaces --workload /\n"
        "                      --requests and the load generators)\n"
        "\n"
        "Multi-turn sessions (replaces --workload when set):\n"
        "  --sessions N        concurrent conversations (0 = off);\n"
        "                      every turn shares the system prompt\n"
        "                      and prepends its session history\n"
        "  --turns N           requests per session (default 4)\n"
        "  --system-prompt-tokens N\n"
        "                      shared system prompt length (512)\n"
        "\n"
        "Scheduler:\n"
        "  --scheduler NAME    past_future | aggressive |\n"
        "                      conservative | oracle\n"
        "  --reserved-ratio F  past_future reserve (default 0.03)\n"
        "  --window-size N     past_future history window (1000)\n"
        "  --watermark F       aggressive watermark (default 0.95)\n"
        "  --overcommit F      conservative multiplier (default 1.0)\n"
        "  --queue-policy P    fcfs | sjf | edf | priority\n"
        "                      (queue ordering; default fcfs)\n"
        "  --priority-mix L    class shares, lowest first, e.g.\n"
        "                      0.8,0.2 = 20% priority-1 requests\n"
        "\n"
        "Multi-tenant isolation:\n"
        "  --tenants N         tenants drawing the workload's\n"
        "                      requests, ids 0..N-1 (default 0 =\n"
        "                      single tenant)\n"
        "  --tenant-zipf S     Zipf exponent of the tenant traffic\n"
        "                      shares (default 0 = uniform)\n"
        "  --tenant-weights L  explicit tenant shares, e.g. 8,1,1\n"
        "                      (count = --tenants; exclusive with\n"
        "                      --tenant-zipf)\n"
        "  --tenant-tree       schedule through the per-tenant\n"
        "                      fair tree (weighted fair queueing\n"
        "                      over tenants, --queue-policy within\n"
        "                      one; also makes overload shedding\n"
        "                      fairness-aware). Off = flat\n"
        "                      bit-exact pipeline\n"
        "\n"
        "Platform:\n"
        "  --model NAME        llama2-7b | llama2-13b | llama2-70b |\n"
        "                      qwen-vl-chat | llava15-7b | llava15-13b\n"
        "  --hardware NAME     a100-80g | h800 | rtx4090 | a30\n"
        "  --tp N              tensor-parallel degree (default 1)\n"
        "\n"
        "Fleet (exact event-driven co-simulation when N > 1):\n"
        "  --instances N       fleet size (default 1)\n"
        "  --routing P         round-robin | least-outstanding |\n"
        "                      future-memory (the default) |\n"
        "                      prefix-affinity (sticky sessions:\n"
        "                      turns follow their cached prefix)\n"
        "  --platform-mix L    per-instance hardware, name[:count]\n"
        "                      entries summing to N, e.g.\n"
        "                      a100-80g:2,a30:2 (default:\n"
        "                      --hardware everywhere)\n"
        "  --drain-at S        drain instance 0 after S simulated\n"
        "                      seconds; its queued requests\n"
        "                      re-dispatch through the router\n"
        "  --sim-threads K     shard the fleet's engines across K\n"
        "                      compute threads (default 1); results\n"
        "                      are bit-identical to the\n"
        "                      single-threaded run (works with\n"
        "                      --autoscale and --disagg too)\n"
        "\n"
        "Disaggregated prefill/decode (KV migration over a modeled\n"
        "interconnect; exclusive with --instances/--routing):\n"
        "  --disagg            split the fleet into a prefill pool\n"
        "                      (routed by pending prefill load) and\n"
        "                      a decode pool (future-memory);\n"
        "                      finished prefill KV migrates through\n"
        "                      a bounded handoff queue\n"
        "  --prefill-instances N\n"
        "                      prefill pool size (default 1)\n"
        "  --decode-instances N\n"
        "                      decode pool size (default 1)\n"
        "  --handoff-depth N   handoff queue bound; a transfer\n"
        "                      finding it full is shed (default 64)\n"
        "  --link-gbps G       interconnect bandwidth, GB/s\n"
        "                      (default: the hardware's\n"
        "                      interconnect profile)\n"
        "  --link-latency S    fixed per-transfer latency, seconds\n"
        "                      (default: hardware profile)\n"
        "\n"
        "Elastic autoscaling (SLA -> capacity control loop;\n"
        "with --disagg, one independent loop per pool):\n"
        "  --autoscale         close the loop: provision/retire\n"
        "                      instances from SLO attainment and\n"
        "                      fleet-wide future-memory forecasts\n"
        "                      (works from --instances 1 up)\n"
        "  --min-instances N   scale-down floor (default 1)\n"
        "  --max-instances N   scale-up ceiling (default 8)\n"
        "  --provision-delay S cold-start delay before a new\n"
        "                      instance joins the router (10)\n"
        "  --scale-policy P    reactive (threshold+hysteresis on\n"
        "                      observed attainment) | predictive\n"
        "                      (fleet-wide future-memory forecast,\n"
        "                      the default)\n"
        "  --scale-slo-target F attainment target in (0, 1]\n"
        "                      (default 0.9)\n"
        "  --shed-policy P     never (default) | overload: at max\n"
        "                      scale, reject arrivals that would\n"
        "                      push outstanding work past the\n"
        "                      shed bound instead of queueing\n"
        "                      without limit\n"
        "\n"
        "SLA (defaults follow the paper, by model size):\n"
        "  --ttft-limit S      TTFT limit, seconds\n"
        "  --mtpot-limit S     max time-per-output-token, seconds\n"
        "\n"
        "Engine:\n"
        "  --block-size N      KV block size (default 16)\n"
        "  --prefix-cache M    on | off (default off): shared-prefix\n"
        "                      KV reuse with copy-on-write blocks;\n"
        "                      admission charges and prefills only\n"
        "                      the uncached prompt suffix\n"
        "  --split-fuse        enable chunked prefill\n"
        "  --max-batch N       running-batch cap (0 = unlimited)\n"
        "  --eviction-policy P lifo | fifo\n"
        "  --eviction-mode M   recompute | swap\n"
        "  --warmup N          discard metrics of first N requests\n"
        "\n"
        "Run limits / output:\n"
        "  --max-requests N    stop after N finished requests\n"
        "  --max-seconds S     stop after S simulated seconds\n"
        "  --format F          table | json | both (default table)\n"
        "  --csv PATH          also write per-request CSV\n"
        "\n"
        "Flight recorder (read-only: the RunReport is\n"
        "byte-identical with tracing on or off):\n"
        "  --trace-out PATH    write a Chrome trace-event JSON\n"
        "                      (open in Perfetto / chrome://tracing)\n"
        "                      plus a per-request timeline at\n"
        "                      PATH.requests.csv\n"
        "  --trace-detail L    off | requests (lifecycle spans and\n"
        "                      decision instants; the default when\n"
        "                      --trace-out is set) | steps (+ per-\n"
        "                      iteration engine counters) | full\n"
        "                      (+ per-shard wall-clock profiling\n"
        "                      under --sim-threads)\n"
        "  --trace-limit N     per-sink event ring capacity\n"
        "                      (default 65536); the oldest events\n"
        "                      drop when a ring wraps\n"
        "  --help, -h          show this reference\n";
}

Scenario
assembleScenario(const CliOptions &options)
{
    const model::ModelSpec model_spec = makeModelSpec(options.model);

    workload::Dataset dataset;
    workload::SessionWorkloadConfig session_config;
    const bool session_mode = options.sessions > 0;
    if (session_mode) {
        session_config.numSessions = options.sessions;
        session_config.turnsPerSession = options.turns;
        session_config.systemPromptTokens =
            options.systemPromptTokens;
        session_config.thinkTime =
            secondsToTicks(options.thinkSeconds);
        session_config.seed = options.seed;
        // The dataset stands in for naming and generation caps so
        // the scheduler-seeding path below is shared.
        dataset.name = "sessions(" +
            std::to_string(options.sessions) + "x" +
            std::to_string(options.turns) + ")";
        dataset.maxNewTokens = session_config.maxNewTokens;
    } else {
        // textvqa's vision prefix follows the selected model
        // (Qwen-VL uses 256 image tokens, LLaVA 576); text-only
        // models fall back to the LLaVA-sized prefix.
        const TokenCount image_tokens =
            model_spec.imageTokens > 0 ? model_spec.imageTokens
                                       : 576;
        if (!options.traceReplay.empty()) {
            dataset =
                workload::readDatasetCsvFile(options.traceReplay);
            for (const workload::RequestSpec &spec :
                 dataset.requests) {
                if (spec.arrivalTick < 0) {
                    throw std::invalid_argument(
                        "--trace-replay dataset " +
                        options.traceReplay + ": request " +
                        std::to_string(spec.id) +
                        " has no arrival_us timestamp");
                }
            }
        } else {
            dataset = makeWorkload(options.workload,
                                   options.requests, options.seed,
                                   image_tokens);
        }

        if (!options.priorityMix.empty()) {
            workload::assignPriorityMix(
                dataset, parsePriorityMix(options.priorityMix),
                options.seed ^ 0x9e3779b97f4a7c15ull);
        }

        if (options.tenants > 0) {
            // A distinct seed stream so the tenant draw composes
            // with (not perturbs) the priority draw.
            workload::assignTenantMix(
                dataset, makeTenantMix(options),
                options.seed ^ 0x517cc1b727220a95ull);
        }
    }

    const metrics::SlaSpec sla = makeSla(options);

    core::SchedulerConfig scheduler_config =
        makeSchedulerConfig(options);
    // Cold-start seeding with the service cap, as the benches do.
    scheduler_config.pastFuture.seedOutputLen = dataset.maxNewTokens;
    if (!core::parseQueuePolicyKind(options.queuePolicy,
                                    scheduler_config.queue.kind)) {
        throw std::invalid_argument("unknown queue policy: " +
                                    options.queuePolicy);
    }
    scheduler_config.queue.predictorWindow = options.windowSize;
    scheduler_config.queue.seedOutputLen = dataset.maxNewTokens;
    // EDF deadlines follow the scenario's TTFT SLA.
    scheduler_config.queue.ttftDeadline = sla.ttftLimit;

    if (options.tenantTree) {
        // Fair weights follow the configured traffic shares, so
        // "fair" means proportional to each tenant's entitlement.
        scheduler_config.tenantTree = true;
        scheduler_config.tenantSpec.numTenants = options.tenants;
        scheduler_config.tenantSpec.weights =
            workload::tenantTreeWeights(makeTenantMix(options));
    }

    engine::RunLimits limits;
    limits.maxFinishedRequests = options.maxFinishedRequests;
    if (options.maxSimSeconds > 0.0)
        limits.maxTicks = secondsToTicks(options.maxSimSeconds);

    Scenario scenario{
        std::move(dataset),
        session_mode,
        session_config,
        scheduler_config,
        model::PerfModel(model_spec,
                         makeHardwareSpec(options.hardware,
                                          options.tensorParallel)),
        sla,
        makeEngineConfig(options),
        limits,
        options.clients,
        options.poissonRate,
        secondsToTicks(options.thinkSeconds),
        options.seed,
        {},
        cluster::RoutingPolicy::FutureMemory,
        0,
        1,
        false,
        workload::RateSchedule::constant(1.0),
        false,
        {},
        {},
    };

    if (!options.rateSchedule.empty()) {
        std::string error;
        if (!workload::parseRateSchedule(options.rateSchedule,
                                         scenario.rateSchedule,
                                         error)) {
            throw std::invalid_argument("bad --rate-schedule: " +
                                        error);
        }
        scenario.hasRateSchedule = true;
    }

    if (options.autoscale) {
        scenario.autoscale = true;
        autoscale::AutoscaleConfig &config =
            scenario.autoscaleConfig;
        config.minInstances = options.minInstances;
        config.maxInstances = options.maxInstances;
        config.provisionDelay =
            secondsToTicks(options.provisionDelaySeconds);
        config.sloTarget = options.scaleSloTarget;
        config.sla = sla;
        if (!autoscale::parseShedPolicy(options.shedPolicy,
                                        config.shedPolicy)) {
            throw std::invalid_argument("unknown shed policy: " +
                                        options.shedPolicy);
        }
        if (options.tenants > 0) {
            // Fairness-aware shedding: under overload the tenants
            // over their traffic share absorb the rejections.
            config.tenantShares = makeTenantMix(options).shares();
        }
        // Validate the policy name here so a typo fails before the
        // simulation, not inside it.
        if (autoscale::makeScalePolicy(options.scalePolicy,
                                       config.sloTarget) ==
            nullptr) {
            throw std::invalid_argument("unknown scale policy: " +
                                        options.scalePolicy);
        }
        scenario.scalePolicyName = options.scalePolicy;
    }

    if (!options.routing.empty() &&
        !cluster::parseRoutingPolicy(options.routing,
                                     scenario.routing)) {
        throw std::invalid_argument("unknown routing policy: " +
                                    options.routing);
    }
    if ((options.instances > 1 || options.autoscale) &&
        !options.disagg) {
        // Guarded in parseCliArgs for the CLI; repeated here so
        // programmatic callers cannot assemble a fleet whose run
        // limits would be silently ignored.
        if (options.maxFinishedRequests > 0 ||
            options.maxSimSeconds > 0.0) {
            throw std::invalid_argument(
                "run limits are single-instance only");
        }
        const std::vector<std::string> mix =
            options.platformMix.empty()
            ? std::vector<std::string>(options.instances,
                                       options.hardware)
            : expandPlatformMix(options.platformMix,
                                options.instances);
        scenario.fleetPerfs.reserve(mix.size());
        for (const std::string &hardware : mix) {
            scenario.fleetPerfs.emplace_back(
                model_spec,
                makeHardwareSpec(hardware,
                                 options.tensorParallel));
        }
        if (options.drainAtSeconds > 0.0) {
            // Sub-tick values would round to 0 and silently skip
            // the drain; "as early as possible" is tick 1.
            scenario.drainAt = std::max<Tick>(
                1, secondsToTicks(options.drainAtSeconds));
        }
    }
    scenario.tenants = options.tenants;
    scenario.traceReplay = !options.traceReplay.empty();
    scenario.simThreads =
        static_cast<std::uint32_t>(options.simThreads);

    if (options.disagg) {
        scenario.disagg = true;
        scenario.prefillInstances = options.prefillInstances == 0
            ? 1 : options.prefillInstances;
        scenario.decodeInstances = options.decodeInstances == 0
            ? 1 : options.decodeInstances;
        disagg::DisaggConfig &config = scenario.disaggConfig;
        config.kvBytesPerToken = model_spec.kvBytesPerToken();
        config.blockSize = scenario.engineConfig.blockSize;
        const model::HardwareSpec &hardware =
            scenario.perf.hardwareSpec();
        config.linkBandwidth = options.linkGbps > 0.0
            ? options.linkGbps * 1e9
            : hardware.interconnectBandwidth;
        config.transferLatency = secondsToTicks(
            options.linkLatencySeconds >= 0.0
            ? options.linkLatencySeconds
            : hardware.interconnectLatency);
        if (options.handoffDepth > 0)
            config.handoffDepth = options.handoffDepth;
    }

    if (!options.traceOut.empty()) {
        scenario.traceOut = options.traceOut;
        const std::string detail = options.traceDetail.empty()
            ? "requests" : options.traceDetail;
        if (!trace::parseTraceDetail(detail,
                                     &scenario.traceDetail)) {
            throw std::invalid_argument("unknown trace detail: " +
                                        detail);
        }
        if (options.traceLimit > 0)
            scenario.traceLimit = options.traceLimit;
    }
    return scenario;
}

metrics::RunReport
runScenario(const Scenario &scenario)
{
    if (scenario.traceDetail == trace::TraceDetail::Off ||
        scenario.traceOut.empty())
        return runScenario(scenario, nullptr);

    trace::TraceConfig config;
    config.detail = scenario.traceDetail;
    config.ringCapacity = scenario.traceLimit;
    trace::TraceRecorder recorder(config);
    metrics::RunReport report = runScenario(scenario, &recorder);
    if (!recorder.writeChromeJsonFile(scenario.traceOut)) {
        throw std::runtime_error("cannot write trace file: " +
                                 scenario.traceOut);
    }
    const std::string csv_path = scenario.traceOut +
        ".requests.csv";
    if (!recorder.writeRequestCsvFile(csv_path)) {
        throw std::runtime_error("cannot write trace file: " +
                                 csv_path);
    }
    return report;
}

metrics::RunReport
runScenario(const Scenario &scenario,
            trace::TraceRecorder *recorder)
{
    if (scenario.disagg) {
        // Disaggregated fleet: both pools clone the base platform
        // (--hardware) and the scenario's scheduler + engine
        // configuration; the pools differ only in routing and in
        // the work the DisaggCluster hands them.
        const auto make_engine = [&scenario]() {
            return std::make_unique<engine::ServingEngine>(
                scenario.perf,
                core::makeSchedulingPolicy(
                    scenario.schedulerConfig),
                scenario.engineConfig);
        };
        std::vector<std::unique_ptr<engine::ServingEngine>> prefill;
        prefill.reserve(scenario.prefillInstances);
        for (std::size_t i = 0; i < scenario.prefillInstances; ++i)
            prefill.push_back(make_engine());
        std::vector<std::unique_ptr<engine::ServingEngine>> decode;
        decode.reserve(scenario.decodeInstances);
        for (std::size_t i = 0; i < scenario.decodeInstances; ++i)
            decode.push_back(make_engine());

        disagg::DisaggCluster cluster(std::move(prefill),
                                      std::move(decode),
                                      scenario.disaggConfig,
                                      scenario.simThreads);
        if (recorder != nullptr)
            cluster.attachTrace(recorder);
        if (scenario.autoscale) {
            // Two independent control loops. The decode pool never
            // sheds at admission: the bounded handoff queue is the
            // pipeline's only rejection point, so a request that
            // paid for prefill and migration is served.
            const auto enable =
                [&](cluster::ServingCluster &pool,
                    autoscale::ShedPolicy shed) {
                    pool.setInstanceFactory(make_engine);
                    autoscale::AutoscaleConfig config =
                        scenario.autoscaleConfig;
                    config.shedPolicy = shed;
                    auto policy = autoscale::makeScalePolicy(
                        scenario.scalePolicyName,
                        config.sloTarget);
                    LIGHTLLM_ASSERT(
                        policy != nullptr,
                        "scale policy validated at assembly");
                    pool.enableAutoscale(config,
                                         std::move(policy));
                };
            enable(cluster.prefillPool(),
                   scenario.autoscaleConfig.shedPolicy);
            enable(cluster.decodePool(),
                   autoscale::ShedPolicy::Never);
        }

        if (scenario.traceReplay) {
            workload::submitTraceArrivals(scenario.dataset,
                                          cluster);
            return cluster.run();
        }
        if (scenario.hasRateSchedule) {
            workload::submitScheduledArrivals(
                scenario.dataset, cluster, scenario.rateSchedule,
                scenario.seed);
            return cluster.run();
        }
        if (scenario.poissonRate > 0.0) {
            workload::submitPoissonArrivals(scenario.dataset,
                                            cluster,
                                            scenario.poissonRate,
                                            scenario.seed);
            return cluster.run();
        }
        workload::ClosedLoopClientPool clients(
            scenario.clients, scenario.dataset, cluster,
            scenario.thinkTime);
        cluster.setOnFinish(
            [&](const workload::RequestSpec &spec, Tick tick) {
                clients.onRequestFinished(spec.id, tick);
            });
        clients.start();
        return cluster.run();
    }

    if (scenario.fleetPerfs.empty()) {
        // Single instance: the self-clocked engine path, kept
        // bit-identical through the SimContext refactor (golden
        // suite pins it).
        engine::ServingEngine engine(
            scenario.perf,
            core::makeSchedulingPolicy(scenario.schedulerConfig),
            scenario.engineConfig);
        if (recorder != nullptr)
            engine.attachTrace(recorder->createEngine("engine-0"));

        if (scenario.sessionMode) {
            workload::SessionGenerator sessions(
                scenario.sessionConfig, engine);
            engine.setOnFinish(
                [&](const workload::RequestSpec &spec, Tick tick) {
                    sessions.onRequestFinished(spec.id, tick);
                });
            sessions.start();
            return engine.run(scenario.limits);
        }

        if (scenario.traceReplay) {
            workload::submitTraceArrivals(scenario.dataset,
                                          engine);
            return engine.run(scenario.limits);
        }

        if (scenario.hasRateSchedule) {
            workload::submitScheduledArrivals(
                scenario.dataset, engine, scenario.rateSchedule,
                scenario.seed);
            return engine.run(scenario.limits);
        }

        if (scenario.poissonRate > 0.0) {
            workload::submitPoissonArrivals(scenario.dataset,
                                            engine,
                                            scenario.poissonRate,
                                            scenario.seed);
            return engine.run(scenario.limits);
        }

        workload::ClosedLoopClientPool clients(
            scenario.clients, scenario.dataset, engine,
            scenario.thinkTime);
        engine.setOnFinish(
            [&](const workload::RequestSpec &spec, Tick tick) {
                clients.onRequestFinished(spec.id, tick);
            });
        clients.start();
        return engine.run(scenario.limits);
    }

    // Fleet: engines co-simulate exactly on the cluster's shared
    // SimContext; the router places every request.
    std::vector<std::unique_ptr<engine::ServingEngine>> engines;
    engines.reserve(scenario.fleetPerfs.size());
    for (const model::PerfModel &perf : scenario.fleetPerfs) {
        engines.push_back(std::make_unique<engine::ServingEngine>(
            perf,
            core::makeSchedulingPolicy(scenario.schedulerConfig),
            scenario.engineConfig));
    }
    // With --sim-threads K > 1 the fleet borrows an external root
    // context enrolled in a sharded executor; adoption (inside the
    // cluster ctor) then places each engine on a worker shard. The
    // default K = 1 keeps the cluster-owned single-queue loop.
    sim::SimContext shardedRoot;
    std::unique_ptr<sim::ShardedSimContext> hub;
    if (scenario.simThreads > 1) {
        hub = std::make_unique<sim::ShardedSimContext>(
            shardedRoot, scenario.simThreads);
    }
    std::optional<cluster::ServingCluster> fleetStorage;
    if (hub) {
        fleetStorage.emplace(std::move(engines), scenario.routing,
                             shardedRoot);
    } else {
        fleetStorage.emplace(std::move(engines), scenario.routing);
    }
    cluster::ServingCluster &fleet = *fleetStorage;
    if (recorder != nullptr) {
        fleet.setTraceRecorder(recorder);
        if (hub)
            hub->attachTrace(recorder);
    }
    if (scenario.drainAt > 0)
        fleet.scheduleDrain(0, scenario.drainAt);

    if (scenario.autoscale) {
        // Provisioned instances are clones of the base platform
        // (--hardware), sharing the scenario's scheduler + engine
        // configuration.
        fleet.setInstanceFactory([&scenario]() {
            return std::make_unique<engine::ServingEngine>(
                scenario.perf,
                core::makeSchedulingPolicy(
                    scenario.schedulerConfig),
                scenario.engineConfig);
        });
        auto policy = autoscale::makeScalePolicy(
            scenario.scalePolicyName,
            scenario.autoscaleConfig.sloTarget);
        LIGHTLLM_ASSERT(policy != nullptr,
                        "scale policy validated at assembly");
        fleet.enableAutoscale(scenario.autoscaleConfig,
                              std::move(policy));
    }

    if (scenario.sessionMode) {
        workload::SessionGenerator sessions(
            scenario.sessionConfig, fleet);
        fleet.setOnFinish(
            [&](const workload::RequestSpec &spec, Tick tick) {
                sessions.onRequestFinished(spec.id, tick);
            });
        sessions.start();
        return fleet.run();
    }

    if (scenario.traceReplay) {
        workload::submitTraceArrivals(scenario.dataset, fleet);
        return fleet.run();
    }

    if (scenario.hasRateSchedule) {
        workload::submitScheduledArrivals(scenario.dataset, fleet,
                                          scenario.rateSchedule,
                                          scenario.seed);
        return fleet.run();
    }

    if (scenario.poissonRate > 0.0) {
        workload::submitPoissonArrivals(scenario.dataset, fleet,
                                        scenario.poissonRate,
                                        scenario.seed);
        return fleet.run();
    }

    workload::ClosedLoopClientPool clients(
        scenario.clients, scenario.dataset, fleet,
        scenario.thinkTime);
    fleet.setOnFinish(
        [&](const workload::RequestSpec &spec, Tick tick) {
            clients.onRequestFinished(spec.id, tick);
        });
    clients.start();
    return fleet.run();
}

void
emitReport(std::ostream &os, const CliOptions &options,
           const Scenario &scenario,
           const metrics::RunReport &report)
{
    const metrics::SlaSpec &sla = scenario.sla;
    if (options.format == "table" || options.format == "both") {
        TextTable table({"metric", "value"});
        table.addRow({"scheduler", report.schedulerName});
        table.addRow({"workload", scenario.dataset.name});
        table.addRow({"finished",
                      formatCount(static_cast<std::int64_t>(
                          report.numFinished))});
        table.addRow({"makespan_s",
                      formatDouble(ticksToSeconds(report.makespan),
                                   2)});
        table.addRow({"throughput_tok_s",
                      formatDouble(report.throughputTokensPerSec(),
                                   1)});
        table.addRow({"goodput_tok_s",
                      formatDouble(report.goodputTokensPerSec(sla),
                                   1)});
        table.addRow({"sla_compliance",
                      formatPercent(
                          report.slaCompliantFraction(sla))});
        table.addRow({"mean_ttft_s",
                      formatDouble(report.meanTtftSeconds(), 3)});
        table.addRow({"p50_ttft_s",
                      formatDouble(report.p50TtftSeconds(), 3)});
        table.addRow({"p90_ttft_s",
                      formatDouble(report.p90TtftSeconds(), 3)});
        table.addRow({"p99_ttft_s",
                      formatDouble(report.p99TtftSeconds(), 3)});
        table.addRow({"p50_mtpot_s",
                      formatDouble(report.p50MtpotSeconds(), 3)});
        table.addRow({"p90_mtpot_s",
                      formatDouble(report.p90MtpotSeconds(), 3)});
        table.addRow({"p99_mtpot_s",
                      formatDouble(report.p99MtpotSeconds(), 3)});
        table.addRow({"avg_batch_size",
                      formatDouble(report.avgBatchSize, 1)});
        table.addRow({"eviction_events",
                      formatCount(report.evictionEvents)});
        table.addRow({"avg_consumed_mem",
                      formatPercent(report.avgConsumedMemory)});
        if (scenario.engineConfig.prefixCache) {
            table.addRow({"prefix_hit_rate",
                          formatPercent(report.prefixHitRate())});
            table.addRow({"prefix_hit_tokens",
                          formatCount(report.prefixHitTokens)});
        }
        if (scenario.autoscale) {
            table.addRow({"shed_requests",
                          formatCount(report.shedRequests)});
            table.addRow({"shed_rate",
                          formatPercent(report.shedRate())});
            table.addRow({"instance_seconds",
                          formatDouble(report.instanceSeconds,
                                       1)});
            table.addRow({"instance_cost",
                          formatDouble(report.instanceCost, 4)});
            table.addRow({"peak_instances",
                          formatCount(static_cast<std::int64_t>(
                              report.peakInstances))});
            table.addRow({"scale_up_events",
                          formatCount(report.scaleUpEvents)});
            table.addRow({"scale_down_events",
                          formatCount(report.scaleDownEvents)});
        }
        if (report.disaggregated) {
            if (!scenario.autoscale) {
                table.addRow({"instance_seconds",
                              formatDouble(report.instanceSeconds,
                                           1)});
                table.addRow({"instance_cost",
                              formatDouble(report.instanceCost,
                                           4)});
            }
            table.addRow({"prefill_pool_finished",
                          formatCount(static_cast<std::int64_t>(
                              report.prefillPool.finished))});
            table.addRow({"prefill_pool_p99_ttft_s",
                          formatDouble(
                              report.prefillPool.p99TtftSeconds,
                              3)});
            table.addRow({"prefill_pool_p99_mtpot_s",
                          formatDouble(
                              report.prefillPool.p99MtpotSeconds,
                              3)});
            table.addRow({"decode_pool_finished",
                          formatCount(static_cast<std::int64_t>(
                              report.decodePool.finished))});
            table.addRow({"decode_pool_p99_ttft_s",
                          formatDouble(
                              report.decodePool.p99TtftSeconds,
                              3)});
            table.addRow({"decode_pool_p99_mtpot_s",
                          formatDouble(
                              report.decodePool.p99MtpotSeconds,
                              3)});
            table.addRow({"handoff_queue_p99_s",
                          formatDouble(
                              report.handoffQueueP99Seconds, 3)});
            table.addRow({"migrated_kv_bytes",
                          formatCount(report.migratedKvBytes)});
            table.addRow({"migrated_requests",
                          formatCount(report.migratedRequests)});
            table.addRow({"handoff_shed_requests",
                          formatCount(report.handoffShedRequests)});
        }
        if (scenario.tenants > 0) {
            // Per-tenant breakdown keyed by the records' scheduling
            // class; tenants with no finished requests print 0.
            std::vector<std::vector<double>> ttfts(
                scenario.tenants);
            for (const metrics::RequestRecord &record :
                 report.requests) {
                if (record.cls.tenant < scenario.tenants) {
                    ttfts[record.cls.tenant].push_back(
                        ticksToSeconds(record.ttft()));
                }
            }
            for (std::size_t t = 0; t < scenario.tenants; ++t) {
                auto &samples = ttfts[t];
                std::sort(samples.begin(), samples.end());
                const double p99 = samples.empty()
                    ? 0.0
                    : samples[std::min(samples.size() - 1,
                                       (samples.size() * 99) /
                                           100)];
                const std::string prefix =
                    "tenant" + std::to_string(t);
                table.addRow({prefix + "_finished",
                              formatCount(static_cast<std::int64_t>(
                                  samples.size()))});
                table.addRow({prefix + "_p99_ttft_s",
                              formatDouble(p99, 3)});
            }
        }
        table.print(os);
        os << report.summary(sla) << "\n";
    }
    if (options.format == "json" || options.format == "both")
        metrics::writeSummaryJson(os, report, sla);
    if (!options.csvPath.empty())
        metrics::writeRequestsCsvFile(options.csvPath, report, sla);
}

} // namespace cli
} // namespace lightllm
