/**
 * @file
 * Unified scenario runner: compose workload, scheduler, platform,
 * engine, and SLA from flags, simulate, and print the report.
 */

#include <exception>
#include <iostream>

#include "cli_scenario.hh"

int
main(int argc, char **argv)
{
    using namespace lightllm;

    cli::CliOptions options;
    const std::string error =
        cli::parseCliArgs(argc, argv, options);
    if (!error.empty()) {
        std::cerr << "pfs_cli: " << error << "\n\n";
        cli::printCliUsage(std::cerr);
        return 2;
    }
    if (options.showHelp) {
        cli::printCliUsage(std::cout);
        return 0;
    }

    try {
        const cli::Scenario scenario =
            cli::assembleScenario(options);
        const metrics::RunReport report =
            cli::runScenario(scenario);
        cli::emitReport(std::cout, options, scenario, report);
    } catch (const std::exception &ex) {
        std::cerr << "pfs_cli: " << ex.what() << "\n";
        return 1;
    }
    return 0;
}
