/**
 * @file
 * Prefix-cache effectiveness on multi-turn session traffic.
 *
 * Not a paper figure: this seeds the perf trajectory of the
 * shared-prefix KV subsystem (PR 4). For a session workload —
 * shared system prompt, history-prepended prompts — the radix
 * prefix cache should turn most of each turn's prefill into block
 * reuse: mean TTFT and total prefilled tokens drop while hit rate
 * climbs with conversation depth. Each sweep point runs the
 * identical workload with the cache off and on; rows land in
 * BENCH_prefix_cache.json so CI archives every run and a regression
 * shows up as a shrinking ttft_speedup at the same depth.
 */

#include <chrono>
#include <iostream>
#include <vector>

#include "base/str_util.hh"
#include "base/table.hh"
#include "bench_common.hh"
#include "core/scheduler_factory.hh"
#include "engine/serving_engine.hh"
#include "model/perf_model.hh"
#include "workload/session_gen.hh"

using namespace lightllm;

namespace {

struct RunResult
{
    metrics::RunReport report;
    double wallMillis = 0.0;
};

RunResult
runSessions(std::size_t turns, bool cache_on)
{
    workload::SessionWorkloadConfig config;
    config.numSessions = bench::smokeSize(48, 8);
    config.turnsPerSession = turns;
    config.systemPromptTokens = 512;
    config.thinkTime = secondsToTicks(0.5);
    config.seed = 42;

    auto scheduler_config =
        core::SchedulerConfig::pastFutureDefault(0.03);
    scheduler_config.pastFuture.seedOutputLen = config.maxNewTokens;

    engine::EngineConfig engine_config;
    engine_config.prefixCache = cache_on;

    engine::ServingEngine engine(
        model::PerfModel(model::ModelSpec::llama2_7b(),
                         model::HardwareSpec::a100_80g()),
        core::makeScheduler(scheduler_config), engine_config);

    workload::SessionGenerator sessions(config, engine);
    engine.setOnFinish(
        [&](const workload::RequestSpec &spec, Tick tick) {
            sessions.onRequestFinished(spec.id, tick);
        });

    const auto start = std::chrono::steady_clock::now();
    sessions.start();
    RunResult result;
    result.report = engine.run();
    result.wallMillis = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    return result;
}

} // namespace

int
main()
{
    std::cout << "# Prefix cache: multi-turn sessions, shared "
                 "system prompt, cache off vs on\n\n";

    const std::vector<std::size_t> turn_sweep =
        bench::smokeTruncate(std::vector<std::size_t>{2, 4, 8}, 2);

    TextTable table({"turns", "mean_ttft_off_s", "mean_ttft_on_s",
                     "ttft_speedup", "hit_rate",
                     "prefill_tok_off", "prefill_tok_on"});
    std::vector<bench::JsonRow> rows;
    for (const std::size_t turns : turn_sweep) {
        const RunResult off = runSessions(turns, false);
        const RunResult on = runSessions(turns, true);
        const double ttft_off = off.report.meanTtftSeconds();
        const double ttft_on = on.report.meanTtftSeconds();
        table.addRow({
            formatCount(static_cast<std::int64_t>(turns)),
            formatDouble(ttft_off, 4),
            formatDouble(ttft_on, 4),
            formatDouble(ttft_on > 0.0 ? ttft_off / ttft_on : 0.0,
                         2),
            formatPercent(on.report.prefixHitRate(), 2),
            formatCount(off.report.totalPrefillTokens),
            formatCount(on.report.totalPrefillTokens),
        });
        rows.push_back(bench::JsonRow{
            {"turns", static_cast<double>(turns)},
            {"finished_off",
             static_cast<double>(off.report.numFinished)},
            {"finished_on",
             static_cast<double>(on.report.numFinished)},
            {"mean_ttft_off_s", ttft_off},
            {"mean_ttft_on_s", ttft_on},
            {"ttft_speedup",
             ttft_on > 0.0 ? ttft_off / ttft_on : 0.0},
            {"hit_rate", on.report.prefixHitRate()},
            {"prefill_tokens_off",
             static_cast<double>(off.report.totalPrefillTokens)},
            {"prefill_tokens_on",
             static_cast<double>(on.report.totalPrefillTokens)},
            {"wall_ms_off", off.wallMillis},
            {"wall_ms_on", on.wallMillis},
        });
    }
    table.print(std::cout);

    bench::writeJson("BENCH_prefix_cache.json", "prefix_cache",
                     rows);
    std::cout << "\nWrote BENCH_prefix_cache.json ("
              << (bench::smokeMode() ? "smoke" : "full")
              << " mode). Reading: hit_rate is the fraction of "
                 "prompt tokens served from cached blocks; it (and "
                 "ttft_speedup) should grow with conversation depth "
                 "because later turns re-prefill only their newest "
                 "user message.\n";
    return 0;
}
