/**
 * @file
 * Event-core speed suite: how many events per wall-clock second the
 * simulation core sustains, from the bare queue up to a full fleet.
 *
 * Not a paper figure: this is the repo's perf gate for the hot path
 * rebuilt in DESIGN.md §8 (slot-arena event records, flat handle
 * index, zero-alloc schedule/fire). Three cases, coarse to fine:
 *
 *   queue_churn    pure EventQueue schedule/fire/cancel/reschedule
 *                  churn over a self-perpetuating population — no
 *                  engine, no model, just the arena and the heap.
 *   single_engine  one ServingEngine under closed-loop load; events
 *                  = decode steps + prefill iterations + 2 per
 *                  finished request (arrival + completion delivery).
 *   fleet_128      128 Past-Future instances behind the
 *                  future-memory router on one shared queue.
 *
 * Results land in BENCH_core_speed.json. When the
 * PFS_BENCH_ENFORCE_FLOOR environment variable is set (CI does this
 * for Release builds only — Debug codegen is not a perf statement),
 * the queue_churn case is checked against a pinned floor and the
 * bench exits non-zero on a >30% regression.
 */

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <vector>

#include "base/str_util.hh"
#include "base/table.hh"
#include "bench_common.hh"
#include "cluster/serving_cluster.hh"
#include "core/scheduler_factory.hh"
#include "engine/serving_engine.hh"
#include "model/perf_model.hh"
#include "sim/event_queue.hh"
#include "workload/client_pool.hh"
#include "workload/datasets.hh"

using namespace lightllm;

namespace {

/**
 * Pinned regression floor for queue_churn, in events/sec. The
 * rebuilt arena core sustains ~11M events/sec on a Release dev-box
 * build; the pre-arena core measured ~2.1M on the same machine. The
 * floor sits well under the rebuilt number so slower shared CI
 * runners pass, but above anything the old core could reach — a
 * regression to pre-arena behaviour trips the gate even after the
 * 30% slack below.
 */
constexpr double kChurnFloorEventsPerSec = 3.0e6;

/** Gate fails below this fraction of the pinned floor. */
constexpr double kFloorSlack = 0.7;

struct CaseResult
{
    const char *name;
    double events;
    double wallMillis;
    double eventsPerSec;
    bench::JsonRow row;
};

double
rate(double events, double wall_ms)
{
    return wall_ms > 0.0 ? events / (wall_ms / 1e3) : 0.0;
}

// --- Case 1: pure queue churn -------------------------------------------

/**
 * A self-perpetuating event population: every fire schedules its
 * replacement at a pseudo-random delay until the fire budget is
 * spent, so the queue holds ~`population` pending events for the
 * whole run. Every 16th drained tick adds handle churn — a burst of
 * side events of which half are cancelled and half rescheduled —
 * exercising the slot free list and the heap index maintenance, not
 * just push/pop.
 */
struct ChurnState
{
    sim::EventQueue queue;
    std::size_t fired = 0;
    std::size_t target = 0;
    std::uint64_t mix = 0x9e3779b97f4a7c15ull;

    Tick
    nextDelay()
    {
        mix = mix * 6364136223846793005ull + 1442695040888963407ull;
        return 1 + static_cast<Tick>((mix >> 33) % 64);
    }

    void
    fire(Tick now)
    {
        ++fired;
        if (fired + queue.size() < target) {
            queue.schedule(now + nextDelay(),
                           [this](Tick when) { fire(when); });
        }
    }
};

CaseResult
runQueueChurn()
{
    const std::size_t population = 4096;
    const std::size_t totalFires =
        bench::smokeSize(8'000'000, 400'000);

    ChurnState state;
    state.target = totalFires;
    std::vector<sim::EventId> handles(64, sim::kInvalidEventId);

    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < population; ++i) {
        state.queue.schedule(
            state.nextDelay(),
            [&state](Tick when) { state.fire(when); });
    }
    std::size_t rounds = 0;
    while (!state.queue.empty()) {
        state.queue.runUntil(state.queue.nextTick());
        if (++rounds % 16 == 0 && !state.queue.empty()) {
            for (std::size_t i = 0; i < handles.size(); ++i) {
                handles[i] = state.queue.schedule(
                    state.queue.nextTick() + 100 +
                        static_cast<Tick>(i),
                    [](Tick) {});
            }
            for (std::size_t i = 0; i < handles.size(); i += 2)
                state.queue.cancel(handles[i]);
            for (std::size_t i = 1; i < handles.size(); i += 2) {
                state.queue.reschedule(
                    handles[i], state.queue.nextTick() + 5);
            }
        }
    }
    const auto wall = std::chrono::duration<double, std::milli>(
        std::chrono::steady_clock::now() - start);

    // Only self-perpetuating fires count (the churn side events are
    // free riders), matching how the pre-rebuild baseline was
    // measured so the floor comparison stays apples-to-apples.
    CaseResult result;
    result.name = "queue_churn";
    result.events = static_cast<double>(state.fired);
    result.wallMillis = wall.count();
    result.eventsPerSec = rate(result.events, result.wallMillis);
    result.row = bench::JsonRow{
        {"case", "queue_churn"},
        {"events", result.events},
        {"wall_ms", result.wallMillis},
        {"events_per_sec", result.eventsPerSec},
        {"floor_events_per_sec", kChurnFloorEventsPerSec},
    };
    return result;
}

// --- Cases 2 and 3: engine and fleet ------------------------------------

/** Fired-event count of a completed serving run (see fleet_scale). */
double
servedEvents(const metrics::RunReport &report)
{
    return static_cast<double>(report.decodeSteps) +
        static_cast<double>(report.prefillIterations) +
        2.0 * static_cast<double>(report.numFinished);
}

CaseResult
runSingleEngine()
{
    const std::size_t requests = bench::smokeSize(4096, 256);
    const auto dataset = workload::makeShareGpt(requests, 42);

    auto config = core::SchedulerConfig::pastFutureDefault(0.05);
    config.pastFuture.seedOutputLen = dataset.maxNewTokens;

    const model::PerfModel perf(model::ModelSpec::llama2_7b(),
                                model::HardwareSpec::a100_80g());
    bench::ServeOptions options;
    options.numClients = bench::smokeSize(64, 24);

    const auto start = std::chrono::steady_clock::now();
    const auto report =
        bench::runClosedLoop(perf, config, dataset, options);
    const auto wall = std::chrono::duration<double, std::milli>(
        std::chrono::steady_clock::now() - start);

    CaseResult result;
    result.name = "single_engine";
    result.events = servedEvents(report);
    result.wallMillis = wall.count();
    result.eventsPerSec = rate(result.events, result.wallMillis);
    result.row = bench::JsonRow{
        {"case", "single_engine"},
        {"requests", static_cast<double>(requests)},
        {"finished", static_cast<double>(report.numFinished)},
        {"events", result.events},
        {"wall_ms", result.wallMillis},
        {"events_per_sec", result.eventsPerSec},
    };
    return result;
}

CaseResult
runFleet()
{
    // Smoke keeps the shape (a routed fleet on one shared queue) at
    // a size a CI smoke pass can afford; the full run is the
    // 128-instance configuration the acceptance target names.
    const std::size_t instances = bench::smokeSize(128, 8);
    const std::size_t requests = 96 * instances;
    const std::size_t clients = 24 * instances;
    const auto dataset = workload::makeShareGpt(requests, 42);

    auto config = core::SchedulerConfig::pastFutureDefault(0.05);
    config.pastFuture.seedOutputLen = dataset.maxNewTokens;

    const model::PerfModel perf(model::ModelSpec::llama2_7b(),
                                model::HardwareSpec::a100_80g());
    std::vector<std::unique_ptr<engine::ServingEngine>> engines;
    engines.reserve(instances);
    for (std::size_t i = 0; i < instances; ++i) {
        engines.push_back(std::make_unique<engine::ServingEngine>(
            perf, core::makeScheduler(config)));
    }
    cluster::ServingCluster fleet(
        std::move(engines), cluster::RoutingPolicy::FutureMemory);

    workload::ClosedLoopClientPool pool(clients, dataset, fleet);
    fleet.setOnFinish(
        [&](const workload::RequestSpec &spec, Tick tick) {
            pool.onRequestFinished(spec.id, tick);
        });

    const auto start = std::chrono::steady_clock::now();
    pool.start();
    const auto report = fleet.run();
    const auto wall = std::chrono::duration<double, std::milli>(
        std::chrono::steady_clock::now() - start);

    CaseResult result;
    result.name = "fleet_128";
    result.events = servedEvents(report);
    result.wallMillis = wall.count();
    result.eventsPerSec = rate(result.events, result.wallMillis);
    result.row = bench::JsonRow{
        {"case", "fleet_128"},
        {"instances", static_cast<double>(instances)},
        {"requests", static_cast<double>(requests)},
        {"finished", static_cast<double>(report.numFinished)},
        {"events", result.events},
        {"wall_ms", result.wallMillis},
        {"events_per_sec", result.eventsPerSec},
    };
    return result;
}

} // namespace

int
main()
{
    std::cout << "# Core speed: events/sec from bare queue to "
                 "128-instance fleet\n\n";

    const std::vector<CaseResult> results = {
        runQueueChurn(),
        runSingleEngine(),
        runFleet(),
    };

    TextTable table({"case", "events", "wall_ms", "events_per_s"});
    std::vector<bench::JsonRow> rows;
    for (const CaseResult &result : results) {
        table.addRow({
            result.name,
            formatDouble(result.events, 0),
            formatDouble(result.wallMillis, 1),
            formatDouble(result.eventsPerSec, 0),
        });
        rows.push_back(result.row);
    }
    table.print(std::cout);

    bench::writeJson("BENCH_core_speed.json", "core_speed", rows);
    std::cout << "\nWrote BENCH_core_speed.json ("
              << (bench::smokeMode() ? "smoke" : "full")
              << " mode).\n";

    const char *enforce = std::getenv("PFS_BENCH_ENFORCE_FLOOR");
    if (enforce != nullptr && *enforce != '\0') {
        const double threshold =
            kChurnFloorEventsPerSec * kFloorSlack;
        const double measured = results.front().eventsPerSec;
        if (measured < threshold) {
            std::cout << "FLOOR CHECK FAILED: queue_churn "
                      << formatDouble(measured, 0)
                      << " events/sec is below "
                      << formatDouble(threshold, 0) << " (70% of the "
                      << formatDouble(kChurnFloorEventsPerSec, 0)
                      << " pinned floor)\n";
            return 1;
        }
        std::cout << "Floor check passed: queue_churn "
                  << formatDouble(measured, 0)
                  << " events/sec >= "
                  << formatDouble(threshold, 0) << "\n";
    }
    return 0;
}
