/**
 * @file
 * Microbenchmarks for the §4 claim that the Past-Future scheduler's
 * decision cost is below 1% of an inference iteration.
 *
 * google-benchmark timings of the admission path (and its pieces)
 * at realistic batch sizes, with the modelled decode-iteration
 * latency printed for comparison: a Past-Future admission round at
 * batch 256 must stay 100x below the ~30-60 ms A100 decode step.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "base/rng.hh"
#include "core/future_memory.hh"
#include "core/length_distribution.hh"
#include "core/past_future_scheduler.hh"
#include "metrics/collector.hh"
#include "model/perf_model.hh"

using namespace lightllm;

namespace {

/** Build a scheduler context over `batch` running requests and a
 *  short waiting queue, backed by persistent storage. */
struct ContextFixture
{
    explicit ContextFixture(std::int64_t batch, std::int64_t queue)
    {
        Rng rng(7);
        for (std::int64_t i = 0; i < batch; ++i) {
            core::RunningView view;
            view.id = i;
            view.promptLen = rng.uniformInt(64, 2048);
            view.generatedLen = rng.uniformInt(0, 1500);
            view.maxNewTokens = 4096;
            view.trueOutputLen =
                view.generatedLen + rng.uniformInt(1, 2000);
            running.push_back(view);
        }
        for (std::int64_t i = 0; i < queue; ++i) {
            core::WaitingView view;
            view.id = 100000 + i;
            view.promptLen = rng.uniformInt(64, 2048);
            view.maxNewTokens = 4096;
            view.trueOutputLen = rng.uniformInt(1, 2000);
            waiting.push_back(view);
        }
        ctx.capacityTokens = 110'000;
        ctx.usedTokens = 0;
        for (const auto &view : running)
            ctx.usedTokens += view.promptLen + view.generatedLen;
        ctx.perRequestOverhead = 16;
        ctx.running = running;
        ctx.waiting = waiting;
    }

    std::vector<core::RunningView> running;
    std::vector<core::WaitingView> waiting;
    core::SchedulerContext ctx;
};

core::PastFutureScheduler
warmScheduler()
{
    core::PastFutureParams params;
    params.windowSize = 1000;
    core::PastFutureScheduler scheduler(params);
    Rng rng(13);
    for (RequestId id = 0; id < 1000; ++id) {
        scheduler.onRequestFinished(
            1'000'000 + id,
            static_cast<TokenCount>(rng.logNormal(7.0, 0.6)));
    }
    return scheduler;
}

void
BM_PastFutureAdmissionRound(benchmark::State &state)
{
    ContextFixture fixture(state.range(0), 8);
    auto scheduler = warmScheduler();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            scheduler.selectAdmissions(fixture.ctx));
    }
}

void
BM_FutureRequiredMemory(benchmark::State &state)
{
    ContextFixture fixture(state.range(0), 0);
    std::vector<core::BatchEntry> entries;
    for (const auto &view : fixture.running) {
        entries.push_back(core::BatchEntry{
            view.promptLen, view.generatedLen, view.trueOutputLen});
    }
    std::vector<core::BatchEntry> scratch;
    for (auto _ : state) {
        scratch = entries;
        benchmark::DoNotOptimize(
            core::futureRequiredMemory(scratch));
    }
}

void
BM_DistributionRebuild(benchmark::State &state)
{
    Rng rng(17);
    std::vector<TokenCount> window(
        static_cast<std::size_t>(state.range(0)));
    for (auto &value : window)
        value = rng.uniformInt(1, 4096);
    for (auto _ : state) {
        core::LengthDistribution dist(window);
        benchmark::DoNotOptimize(dist.maxLength());
    }
}

void
BM_TailSampleAt(benchmark::State &state)
{
    Rng rng(19);
    std::vector<TokenCount> window(1000);
    for (auto &value : window)
        value = rng.uniformInt(1, 4096);
    const core::LengthDistribution dist(window);
    double u = 0.0;
    for (auto _ : state) {
        u += 0.618;
        if (u >= 1.0)
            u -= 1.0;
        benchmark::DoNotOptimize(
            dist.sampleTailAt(u, 1000, 4096));
    }
}

/**
 * Context for the <1% claim: the modelled decode iteration this
 * scheduler overhead hides behind, reported as a "benchmark" so it
 * appears in the same output table (one iteration just reads the
 * precomputed latency).
 */
void
BM_ReferenceDecodeIterationLatency(benchmark::State &state)
{
    const model::PerfModel perf(model::ModelSpec::llama2_7b(),
                                model::HardwareSpec::a100_80g());
    const Tick latency =
        perf.decodeLatency(state.range(0), 100'000);
    for (auto _ : state)
        benchmark::DoNotOptimize(latency);
    state.counters["modeled_ms"] =
        ticksToSeconds(latency) * 1e3;
}

/**
 * Per-iteration metrics recording on the engine hot path: one
 * onDecodeStep is a handful of stores into the 64-entry batch
 * buffer, with the floating-point fold amortized across the batch.
 */
void
BM_CollectorDecodeStep(benchmark::State &state)
{
    metrics::MetricsCollector collector(110'000);
    Tick step = 0;
    for (auto _ : state) {
        ++step;
        collector.onDecodeStep(64, 50'000, 80'000, 82'000,
                               step * 40, 40);
    }
    benchmark::DoNotOptimize(&collector);
}

} // namespace

BENCHMARK(BM_PastFutureAdmissionRound)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_FutureRequiredMemory)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_DistributionRebuild)->Arg(1000)->Arg(5000);
BENCHMARK(BM_TailSampleAt);
BENCHMARK(BM_ReferenceDecodeIterationLatency)->Arg(64)->Arg(256);
BENCHMARK(BM_CollectorDecodeStep);

BENCHMARK_MAIN();
