/**
 * @file
 * Figure 4 reproduction: mean cosine similarity on the global and
 * diagonal comparisons for different historical window sizes
 * (x-axis: 100..5000) and running window sizes (100..1000), on the
 * conversation-like and API-like traces.
 *
 * Expected shape (paper): diagonal similarity stays high across all
 * window-size combinations and always dominates the global mean on
 * the API trace; a historical window of ~1000 balances both trace
 * types, which is why the scheduler defaults to windowSize = 1000.
 */

#include <iostream>

#include "base/str_util.hh"
#include "base/table.hh"
#include "bench_common.hh"
#include "stats/window_analysis.hh"
#include "workload/trace_gen.hh"

using namespace lightllm;

int
main()
{
    std::cout << "# Figure 4: window-size sweep of adjacent-window "
                 "similarity\n\n";

    const std::size_t trace_len = bench::smokeSize(60000, 12000);
    const auto conversation =
        workload::makeConversationTrace(trace_len, 11);
    const auto api = workload::makeApiTrace(trace_len, 12);

    const std::vector<std::size_t> history_sizes{100, 200, 500,
                                                 1000, 2000, 5000};
    const std::vector<std::size_t> running_sizes{100, 200, 500,
                                                 1000};

    for (const auto *trace : {&conversation, &api}) {
        std::cout << "## Trace: " << trace->name << "\n\n";
        TextTable table({"Running window", "Metric", "hist=100",
                         "hist=200", "hist=500", "hist=1000",
                         "hist=2000", "hist=5000"});
        const auto outputs = trace->outputLens();
        for (std::size_t running : running_sizes) {
            std::vector<std::string> diag_row{
                std::to_string(running), "diagonal"};
            std::vector<std::string> global_row{
                std::to_string(running), "global"};
            for (std::size_t history : history_sizes) {
                const auto result = stats::adjacentWindowSimilarity(
                    outputs, history, running);
                diag_row.push_back(
                    formatDouble(result.diagonalMean, 3));
                global_row.push_back(
                    formatDouble(result.globalMean, 3));
            }
            table.addRow(diag_row);
            table.addRow(global_row);
            table.addSeparator();
        }
        table.print(std::cout);
        std::cout << "\n";
    }

    std::cout << "Reading: 'diagonal' is the history window vs the "
                 "requests immediately after it (what the scheduler "
                 "exploits); 'global' compares across the whole "
                 "trace. Diagonal >= global everywhere, and "
                 "hist=1000 works well for both traces.\n";
    return 0;
}
