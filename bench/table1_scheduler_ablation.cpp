/**
 * @file
 * Table 1 reproduction: decoding steps, current consumed memory,
 * (true) future required memory, and evicted-request ratio for the
 * theoretical optimum, Past-Future (reserved = 3/5/10%), Aggressive
 * (watermark = 99/95/90%) and Conservative (no overcommit, and with
 * overcommit) on Distribution-1/2/3 with Llama-2-7B on A100-80G.
 *
 * Expected shape (paper): the optimum tops utilization with zero
 * evictions; Past-Future approaches it with single-digit evictions
 * that shrink as the reserve grows; Aggressive reaches the highest
 * consumed memory but its future requirement exceeds 100% and its
 * eviction ratio explodes (94%+ at watermark 99% on decode-heavy);
 * Conservative never evicts but wastes ~40% of memory and needs the
 * most decoding steps; overcommit trades that waste for evictions.
 */

#include <iostream>

#include "base/str_util.hh"
#include "base/table.hh"
#include "bench_common.hh"

using namespace lightllm;
using namespace lightllm::bench;

namespace {

struct Row
{
    std::string label;
    core::SchedulerConfig config;
};

void
runDataset(const std::string &title, const workload::Dataset &dataset,
           const workload::Dataset &history, double conservative_oc,
           std::vector<bench::JsonRow> &json_rows)
{
    model::PerfModel perf(model::ModelSpec::llama2_7b(),
                          model::HardwareSpec::a100_80g());

    std::cout << "## " << title << "\n\n";

    const std::vector<Row> rows = smokeTruncate(std::vector<Row>{
        {"Theoretical optimum", core::SchedulerConfig::oracle()},
        {"Past-Future (reserved=3%)",
         core::SchedulerConfig::pastFutureDefault(0.03)},
        {"Past-Future (reserved=5%)",
         core::SchedulerConfig::pastFutureDefault(0.05)},
        {"Past-Future (reserved=10%)",
         core::SchedulerConfig::pastFutureDefault(0.10)},
        {"Aggressive (watermark=99%)",
         core::SchedulerConfig::aggressive(0.99)},
        {"Aggressive (watermark=95%)",
         core::SchedulerConfig::aggressive(0.95)},
        {"Aggressive (watermark=90%)",
         core::SchedulerConfig::aggressive(0.90)},
        {"Conservative (no overcommit)",
         core::SchedulerConfig::conservative(1.0)},
        {"Conservative (overcommit=" +
             formatPercent(conservative_oc, 0) + ")",
         core::SchedulerConfig::conservative(conservative_oc)},
    }, 3);

    TextTable table({"Method", "Decoding steps", "Consumed memory",
                     "Future required", "Evicted reqs"});
    for (const auto &row : rows) {
        ServeOptions options;
        options.numClients = sizeClients(perf, dataset, 1.5);
        options.warmupRequests = smokeSize(150, 0);
        options.warmHistory = outputLengths(history);
        const auto report =
            runClosedLoop(perf, row.config, dataset, options);
        table.addRow({row.label,
                      formatCount(report.decodeSteps),
                      formatPercent(report.avgConsumedMemory, 2),
                      formatPercent(report.avgFutureRequired, 2),
                      formatPercent(report.evictedReqRatio(), 2)});
        json_rows.push_back(bench::JsonRow{
            {"dataset", title},
            {"method", row.label},
            {"decode_steps",
             static_cast<double>(report.decodeSteps)},
            {"consumed_memory", report.avgConsumedMemory},
            {"future_required", report.avgFutureRequired},
            {"evicted_req_ratio", report.evictedReqRatio()},
        });
    }
    table.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main()
{
    std::cout << "# Table 1: scheduler ablation on Llama-2-7B-Chat "
                 "/ A100-80G\n\n";

    const std::size_t n = smokeSize(1000, 80);
    const std::size_t history_n = smokeSize(1000, 120);
    std::vector<bench::JsonRow> rows;
    runDataset("Distribution-1 (decode-heavy)",
               workload::makeDistribution1(n, 11),
               workload::makeDistribution1(history_n, 12), 1.5,
               rows);
    runDataset("Distribution-2 (balanced)",
               workload::makeDistribution2(n, 13),
               workload::makeDistribution2(history_n, 14), 1.25,
               rows);
    runDataset("Distribution-3 (prefill-heavy)",
               workload::makeDistribution3(n, 15),
               workload::makeDistribution3(history_n, 16), 1.5,
               rows);

    bench::writeJson("BENCH_table1_ablation.json", "table1_ablation",
                     rows);
    std::cout << "Wrote BENCH_table1_ablation.json ("
              << (smokeMode() ? "smoke" : "full") << " mode).\n"
                 "Reading: fewer decoding steps means larger "
                 "batches per step (better throughput); evicted "
                 "reqs is eviction events / finished requests and "
                 "can exceed 100% when requests bounce repeatedly.\n";
    return 0;
}
