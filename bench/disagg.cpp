/**
 * @file
 * Goodput: disaggregated prefill/decode vs a colocated fleet.
 *
 * Not a paper figure: this pins the perf trajectory of the
 * disaggregated serving subsystem (DESIGN.md §7). Three
 * prompt/output mixes run the same Poisson arrival sequence on two
 * fleets of identical total size:
 *
 *  - colocated: four instances, future-memory routing — every
 *    instance interleaves prefill iterations with its decode batch,
 *    so a burst of long prompts stalls in-flight decodes (MTPOT
 *    gaps stack one prefill at a time);
 *  - disagg 2P+2D: prompts prefill on two dedicated instances, the
 *    KV migrates over a modeled NVLink-class interconnect
 *    (25 GB/s + 2 ms) into two decode-only instances whose batches
 *    never see a prefill stall.
 *
 * The claim BENCH_disagg.json pins: disaggregation wins goodput on
 * the prefill-heavy mix (decode batches keep their inter-token
 * cadence through prompt bursts) and *loses* on the decode-heavy
 * mix — half the fleet idles next to the decode bottleneck while
 * every request still pays the migration. The crossover is the
 * point of the bench: disaggregation is a trade, not a free win,
 * and the claim row reports which side each mix lands on.
 */

#include <chrono>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "base/rng.hh"
#include "base/str_util.hh"
#include "base/table.hh"
#include "bench_common.hh"
#include "cluster/serving_cluster.hh"
#include "core/scheduler_factory.hh"
#include "disagg/disagg_cluster.hh"
#include "engine/serving_engine.hh"
#include "model/perf_model.hh"
#include "workload/arrivals.hh"
#include "workload/datasets.hh"

using namespace lightllm;

namespace {

struct Mix
{
    std::string label;
    TokenCount inputLo, inputHi;
    TokenCount outputLo, outputHi;
    double ratePerSecond;
};

std::vector<Mix>
makeMixes()
{
    // Rates sized so four A100 instances run near (not past)
    // saturation. The prefill-heavy prompts are long enough that a
    // *single* prefill stalls a colocated instance past the 1.5 s
    // MTPOT bound (~100 us/token on A100: 15k tokens ~ 1.5 s), so
    // the colocated fleet violates the SLA at any rate while the
    // same KV migrates in ~0.4 s over the 25 GB/s link.
    std::vector<Mix> mixes{
        {"prefill-heavy", 10000, 20000, 100, 200, 0.85},
        {"balanced", 800, 1600, 150, 300, 6.0},
        {"decode-heavy", 100, 250, 400, 800, 6.0},
    };
    if (bench::smokeMode()) {
        for (Mix &mix : mixes)
            mix.ratePerSecond *= 0.75;
    }
    return mixes;
}

workload::Dataset
makeMixDataset(const Mix &mix, std::size_t requests,
               std::uint64_t seed)
{
    Rng rng(seed);
    workload::Dataset dataset;
    dataset.name = mix.label;
    dataset.maxNewTokens = mix.outputHi;
    dataset.requests.reserve(requests);
    for (RequestId id = 0;
         id < static_cast<RequestId>(requests); ++id) {
        workload::RequestSpec spec;
        spec.id = id;
        spec.inputLen = rng.uniformInt(mix.inputLo, mix.inputHi);
        spec.outputLen = rng.uniformInt(mix.outputLo, mix.outputHi);
        spec.maxNewTokens = mix.outputHi;
        dataset.requests.push_back(spec);
    }
    return dataset;
}

std::unique_ptr<engine::ServingEngine>
makeInstance(const workload::Dataset &dataset)
{
    auto config = core::SchedulerConfig::pastFutureDefault(0.03);
    config.pastFuture.seedOutputLen = dataset.maxNewTokens;
    return std::make_unique<engine::ServingEngine>(
        model::PerfModel(model::ModelSpec::llama2_7b(),
                         model::HardwareSpec::a100_80g()),
        core::makeSchedulingPolicy(config), engine::EngineConfig{});
}

struct RunResult
{
    metrics::RunReport report;
    double wallMillis = 0.0;
};

RunResult
runColocated(const workload::Dataset &dataset, double rate,
             std::size_t instances)
{
    std::vector<std::unique_ptr<engine::ServingEngine>> engines;
    engines.reserve(instances);
    for (std::size_t i = 0; i < instances; ++i)
        engines.push_back(makeInstance(dataset));
    cluster::ServingCluster fleet(
        std::move(engines), cluster::RoutingPolicy::FutureMemory);
    workload::submitPoissonArrivals(dataset, fleet, rate, 42);
    const auto start = std::chrono::steady_clock::now();
    RunResult result;
    result.report = fleet.run();
    result.wallMillis = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() -
                            start)
                            .count();
    return result;
}

RunResult
runDisagg(const workload::Dataset &dataset, double rate,
          std::size_t prefill_instances,
          std::size_t decode_instances)
{
    const model::ModelSpec model = model::ModelSpec::llama2_7b();
    const model::HardwareSpec hardware =
        model::HardwareSpec::a100_80g();
    std::vector<std::unique_ptr<engine::ServingEngine>> prefill;
    for (std::size_t i = 0; i < prefill_instances; ++i)
        prefill.push_back(makeInstance(dataset));
    std::vector<std::unique_ptr<engine::ServingEngine>> decode;
    for (std::size_t i = 0; i < decode_instances; ++i)
        decode.push_back(makeInstance(dataset));

    disagg::DisaggConfig config;
    config.kvBytesPerToken = model.kvBytesPerToken();
    config.blockSize = 16;
    config.linkBandwidth = hardware.interconnectBandwidth;
    config.transferLatency =
        secondsToTicks(hardware.interconnectLatency);
    disagg::DisaggCluster cluster(std::move(prefill),
                                  std::move(decode), config);
    workload::submitPoissonArrivals(dataset, cluster, rate, 42);
    const auto start = std::chrono::steady_clock::now();
    RunResult result;
    result.report = cluster.run();
    result.wallMillis = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() -
                            start)
                            .count();
    return result;
}

} // namespace

int
main()
{
    std::cout << "# Disagg: goodput of prefill/decode "
                 "disaggregation vs a colocated fleet\n\n";

    const std::size_t requests = bench::smokeSize(1200, 160);
    const metrics::SlaSpec sla = metrics::SlaSpec::small7b13b();
    const std::vector<Mix> mixes = makeMixes();

    TextTable table({"mix", "fleet", "goodput_tok_s",
                     "sla_compliance", "p99_ttft_s", "p99_mtpot_s",
                     "shed", "makespan_s"});
    std::vector<bench::JsonRow> rows;
    std::string wins, losses;
    for (const Mix &mix : mixes) {
        const workload::Dataset dataset =
            makeMixDataset(mix, requests, 42 + mix.inputLo);
        const RunResult colocated =
            runColocated(dataset, mix.ratePerSecond, 4);
        const RunResult disaggregated =
            runDisagg(dataset, mix.ratePerSecond, 2, 2);

        for (const auto &[fleet, result] :
             {std::pair<const char *, const RunResult &>{
                  "colocated", colocated},
              {"disagg-2p2d", disaggregated}}) {
            const metrics::RunReport &report = result.report;
            table.addRow({
                mix.label,
                fleet,
                formatDouble(report.goodputTokensPerSec(sla), 1),
                formatPercent(report.slaCompliantFraction(sla), 2),
                formatDouble(report.p99TtftSeconds(), 2),
                formatDouble(report.p99MtpotSeconds(), 3),
                formatCount(report.shedRequests),
                formatDouble(ticksToSeconds(report.makespan), 1),
            });
            bench::JsonRow row{
                {"mix", mix.label},
                {"fleet", fleet},
                {"rate_per_s", mix.ratePerSecond},
                {"finished",
                 static_cast<double>(report.numFinished)},
                {"goodput_tok_s",
                 report.goodputTokensPerSec(sla)},
                {"sla_compliance",
                 report.slaCompliantFraction(sla)},
                {"p99_ttft_s", report.p99TtftSeconds()},
                {"p99_mtpot_s", report.p99MtpotSeconds()},
                {"shed", static_cast<double>(report.shedRequests)},
                {"makespan_s", ticksToSeconds(report.makespan)},
                {"wall_ms", result.wallMillis},
            };
            if (report.disaggregated) {
                row.emplace_back(
                    "migrated_kv_bytes",
                    static_cast<double>(report.migratedKvBytes));
                row.emplace_back(
                    "handoff_queue_p99_s",
                    report.handoffQueueP99Seconds);
            }
            rows.push_back(std::move(row));
        }

        const bool disagg_wins =
            disaggregated.report.goodputTokensPerSec(sla) >
            colocated.report.goodputTokensPerSec(sla);
        auto &side = disagg_wins ? wins : losses;
        if (!side.empty())
            side += '+';
        side += mix.label;
    }
    table.print(std::cout);

    rows.push_back(bench::JsonRow{
        {"mix", "claim"},
        {"fleet", "claim"},
        {"disagg_wins_mixes", wins.empty() ? "none" : wins},
        {"disagg_loses_mixes", losses.empty() ? "none" : losses},
        {"disagg_wins_some_mix", wins.empty() ? 0.0 : 1.0},
    });
    bench::writeJson("BENCH_disagg.json", "disagg", rows);
    std::cout
        << "\nWrote BENCH_disagg.json ("
        << (bench::smokeMode() ? "smoke" : "full")
        << " mode). Reading: disagg should win goodput where "
           "prompts dominate (decode batches keep their cadence "
           "through prefill bursts) and lose where outputs "
           "dominate (half the fleet idles while every request "
           "pays the migration); the claim row names each side "
           "of the crossover.\n";
    return 0;
}
