#include "bench_common.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>

#include "base/logging.hh"
#include "engine/serving_engine.hh"
#include "workload/client_pool.hh"

namespace lightllm {
namespace bench {

bool
smokeMode()
{
    const char *value = std::getenv("PFS_BENCH_SMOKE");
    return value != nullptr && value[0] != '\0';
}

std::size_t
smokeSize(std::size_t full, std::size_t smoke)
{
    return smokeMode() ? smoke : full;
}

void
writeJson(const std::string &path, const std::string &name,
          const std::vector<JsonRow> &rows)
{
    std::ofstream file(path);
    if (!file)
        fatal("cannot open bench result file for writing: ", path);
    file.precision(std::numeric_limits<double>::max_digits10);
    file << "{\n  \"bench\": \"" << name << "\",\n"
         << "  \"smoke\": " << (smokeMode() ? "true" : "false")
         << ",\n  \"rows\": [\n";
    for (std::size_t r = 0; r < rows.size(); ++r) {
        file << "    {";
        for (std::size_t k = 0; k < rows[r].size(); ++k) {
            const JsonValue &value = rows[r][k].second;
            file << (k == 0 ? "" : ", ") << '"' << rows[r][k].first
                 << "\": ";
            if (value.isString) {
                // Labels come from bench code, not user input;
                // reject rather than escape the problematic ones.
                LIGHTLLM_ASSERT(
                    value.str.find('"') == std::string::npos &&
                        value.str.find('\\') == std::string::npos,
                    "label needs JSON escaping in bench ", name,
                    ": ", value.str);
                file << '"' << value.str << '"';
            } else {
                // inf/nan are not JSON; fail at write time instead
                // of archiving an unparseable artifact.
                LIGHTLLM_ASSERT(std::isfinite(value.num),
                                "non-finite value for key ",
                                rows[r][k].first, " in bench ",
                                name);
                file << value.num;
            }
        }
        file << (r + 1 < rows.size() ? "},\n" : "}\n");
    }
    file << "  ]\n}\n";
    if (!file)
        fatal("error while writing bench result file: ", path);
}

metrics::RunReport
runClosedLoop(const model::PerfModel &perf,
              core::SchedulerConfig scheduler_config,
              const workload::Dataset &dataset,
              const ServeOptions &options)
{
    scheduler_config.pastFuture.seedOutputLen = dataset.maxNewTokens;
    scheduler_config.pastFuture.initialHistory = options.warmHistory;

    engine::EngineConfig engine_config = options.engineConfig;
    engine_config.warmupRequests = options.warmupRequests;

    engine::ServingEngine engine(
        perf, core::makeScheduler(scheduler_config), engine_config);
    workload::ClosedLoopClientPool clients(options.numClients,
                                           dataset, engine);
    engine.setOnFinish(
        [&](const workload::RequestSpec &spec, Tick tick) {
            clients.onRequestFinished(spec.id, tick);
        });
    clients.start();
    return engine.run();
}

std::vector<TokenCount>
outputLengths(const workload::Dataset &dataset)
{
    std::vector<TokenCount> lengths;
    lengths.reserve(dataset.requests.size());
    for (const auto &request : dataset.requests)
        lengths.push_back(request.effectiveOutputLen());
    return lengths;
}

std::size_t
sizeClients(const model::PerfModel &perf,
            const workload::Dataset &dataset, double fraction)
{
    // Mean resident footprint of an in-flight request is its prompt
    // plus about half its final output.
    const double resident =
        dataset.meanInputLen() + dataset.meanOutputLen() / 2.0;
    const double capacity =
        static_cast<double>(perf.tokenCapacity());
    const double clients = fraction * capacity / resident;
    return static_cast<std::size_t>(std::max(1.0, clients));
}

std::vector<SchedulerLineup>
figure7Lineup(const workload::Dataset &warm_source)
{
    (void)warm_source;
    return {
        {"Conservative", core::SchedulerConfig::conservative()},
        {"Aggressive (watermark=99%)",
         core::SchedulerConfig::aggressive(0.99)},
        {"Past-Future (ours)",
         core::SchedulerConfig::pastFutureDefault(0.05)},
    };
}

} // namespace bench
} // namespace lightllm
