/**
 * @file
 * Figure 7 reproduction: goodput under different numbers of
 * closed-loop clients for the three schedulers, across the four
 * datasets (ShareGPT-o1, Distribution-1/2/3) and three model scales
 * (7B and 13B on one A100-80G, 70B on 4x A100-80G).
 *
 * Expected shape (paper): all schedulers tie at light load; the
 * conservative scheduler plateaus lowest; the aggressive scheduler
 * tracks Past-Future until memory saturates and then collapses
 * (eviction storms, worst on decode-heavy datasets); Past-Future
 * reaches the highest goodput and degrades most gracefully.
 *
 * Client counts are sized relative to each configuration's token
 * capacity (see DESIGN.md: the simulated A100 reaches its queueing
 * wall at smaller absolute client counts than the paper's testbed,
 * so the x-axis is expressed as a load fraction).
 */

#include <functional>
#include <iostream>
#include <utility>

#include "base/str_util.hh"
#include "base/table.hh"
#include "bench_common.hh"
#include "metrics/sla.hh"

using namespace lightllm;
using namespace lightllm::bench;

namespace {

struct ModelSetup
{
    std::string label;
    model::ModelSpec model;
    model::HardwareSpec hardware;
    metrics::SlaSpec sla;
};

using DatasetMaker =
    std::function<workload::Dataset(std::size_t, std::uint64_t)>;

void
sweepDataset(const ModelSetup &setup, const std::string &name,
             const DatasetMaker &make,
             std::vector<bench::JsonRow> &rows)
{
    const model::PerfModel perf(setup.model, setup.hardware);
    const std::size_t n_requests = smokeSize(400, 48);
    const auto reference = make(n_requests, 1001);
    const auto history = make(smokeSize(1000, 120), 2002);

    std::cout << "## " << setup.label << " - " << name << "\n\n";

    const std::vector<double> load_fractions = smokeTruncate(
        std::vector<double>{0.2, 0.4, 0.6, 0.75, 0.85, 1.0, 1.2},
        2);
    const int replicas = smokeMode() ? 1 : 3;

    std::vector<std::string> headers{"Scheduler"};
    for (double fraction : load_fractions) {
        headers.push_back(
            "load " + formatDouble(fraction, 2) + " (n=" +
            std::to_string(sizeClients(perf, reference, fraction)) +
            ")");
    }
    TextTable table(headers);

    for (const auto &entry : figure7Lineup(history)) {
        std::vector<std::string> row{entry.label};
        for (double fraction : load_fractions) {
            double goodput_sum = 0.0;
            // Label the sweep point like the table header does —
            // from the fixed reference dataset, not whichever
            // replica happened to run last.
            const std::size_t clients =
                sizeClients(perf, reference, fraction);
            for (int replica = 0; replica < replicas; ++replica) {
                const auto dataset =
                    make(n_requests,
                         1001 + static_cast<std::uint64_t>(replica));
                ServeOptions options;
                options.numClients =
                    sizeClients(perf, dataset, fraction);
                options.warmHistory = outputLengths(history);
                const auto report = runClosedLoop(
                    perf, entry.config, dataset, options);
                goodput_sum +=
                    report.goodputTokensPerSec(setup.sla);
            }
            const double goodput = goodput_sum / replicas;
            row.push_back(formatDouble(goodput, 0));
            rows.push_back(bench::JsonRow{
                {"model", setup.label},
                {"dataset", name},
                {"scheduler", entry.label},
                {"load_fraction", fraction},
                {"clients", static_cast<double>(clients)},
                {"goodput_tok_s", goodput},
            });
        }
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main()
{
    std::cout << "# Figure 7: goodput (tokens/s) vs closed-loop "
                 "client load\n\n";

    const std::vector<ModelSetup> setups = smokeTruncate(
        std::vector<ModelSetup>{
            {"Llama-2-7B-Chat / A100-80G",
             model::ModelSpec::llama2_7b(),
             model::HardwareSpec::a100_80g(),
             metrics::SlaSpec::small7b13b()},
            {"Llama-2-13B-Chat / A100-80G",
             model::ModelSpec::llama2_13b(),
             model::HardwareSpec::a100_80g(),
             metrics::SlaSpec::small7b13b()},
            {"Llama-2-70B-Chat / 4x A100-80G (NVLink)",
             model::ModelSpec::llama2_70b(),
             model::HardwareSpec::a100_80g().withTensorParallel(4),
             metrics::SlaSpec::large70b()},
        },
        1);

    const std::vector<std::pair<std::string, DatasetMaker>>
        datasets = smokeTruncate(
            std::vector<std::pair<std::string, DatasetMaker>>{
                {"ShareGPT-o1",
                 [](std::size_t n, std::uint64_t seed) {
                     return workload::makeShareGptO1(n, seed);
                 }},
                {"Distribution-1 (decode-heavy)",
                 [](std::size_t n, std::uint64_t seed) {
                     return workload::makeDistribution1(n, seed);
                 }},
                {"Distribution-2 (balanced)",
                 [](std::size_t n, std::uint64_t seed) {
                     return workload::makeDistribution2(n, seed);
                 }},
                {"Distribution-3 (prefill-heavy)",
                 [](std::size_t n, std::uint64_t seed) {
                     return workload::makeDistribution3(n, seed);
                 }},
            },
            1);

    std::vector<bench::JsonRow> rows;
    for (const auto &setup : setups)
        for (const auto &[name, make] : datasets)
            sweepDataset(setup, name, make, rows);

    bench::writeJson("BENCH_fig7_goodput.json", "fig7_goodput",
                     rows);
    std::cout << "Wrote BENCH_fig7_goodput.json ("
              << (smokeMode() ? "smoke" : "full") << " mode).\n"
                 "Reading: goodput counts only tokens of requests "
                 "meeting the SLA (7B/13B: TTFT < 10 s, MTPOT < "
                 "1.5 s; 70B: 15 s / 5 s).\n";
    return 0;
}
