/**
 * @file
 * Flight-recorder overhead gate: tracing must be observability, not
 * a tax. One fixed closed-loop scenario runs untraced, with a
 * recorder at detail=off, detail=requests, and detail=full; each
 * configuration is repeated and the minimum wall-clock compared
 * against the untraced baseline.
 *
 * Results land in BENCH_trace_overhead.json. When
 * PFS_BENCH_ENFORCE_FLOOR is set (CI, Release builds only), the
 * off-detail run must stay within 1% of baseline (it executes the
 * identical null-pointer hook path, so anything above is noise or a
 * regression) and full detail within 10%. Runs too short to resolve
 * a 1% difference skip the gate with a notice instead of flaking.
 */

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "base/str_util.hh"
#include "base/table.hh"
#include "bench_common.hh"
#include "cli_scenario.hh"
#include "trace/trace_recorder.hh"

using namespace lightllm;

namespace {

constexpr double kOffOverheadLimit = 0.01;
constexpr double kFullOverheadLimit = 0.10;

/** Baselines shorter than this cannot resolve the 1% gate. */
constexpr double kMinGateableWallMs = 100.0;

/** Five repeats: the minimum of five converges on the true floor,
 *  so one-sided scheduler noise cannot fake an overhead. */
constexpr int kRepeats = 5;

cli::Scenario
benchScenario()
{
    cli::CliOptions options;
    options.workload = "sharegpt";
    // Sized so even the smoke baseline clears kMinGateableWallMs
    // and the 1% off-gate resolves above timer noise.
    options.requests = bench::smokeSize(16384, 4096);
    options.clients = 32;
    options.seed = 42;
    return cli::assembleScenario(options);
}

struct ConfigResult
{
    std::string name;
    double wallMillisMin = 0.0;
    double overheadPct = 0.0;
    double eventsRetained = 0.0;
    double eventsDropped = 0.0;
};

/** Minimum wall-clock of kRepeats runs (min rejects scheduler and
 *  frequency noise better than the mean). */
ConfigResult
runConfig(const cli::Scenario &scenario, const std::string &name,
          trace::TraceDetail detail)
{
    ConfigResult result;
    result.name = name;
    double best = 0.0;
    for (int rep = 0; rep < kRepeats; ++rep) {
        trace::TraceRecorder recorder(
            trace::TraceConfig{detail, 1 << 16});
        const auto start = std::chrono::steady_clock::now();
        cli::runScenario(scenario, &recorder);
        const double wall =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - start)
                .count();
        best = rep == 0 ? wall : std::min(best, wall);
        if (rep == 0) {
            double retained = 0.0;
            for (const trace::EngineTrace &sink :
                 recorder.engines())
                retained += static_cast<double>(sink.ring().size());
            result.eventsRetained = retained;
            result.eventsDropped =
                static_cast<double>(recorder.totalDropped());
        }
    }
    result.wallMillisMin = best;
    return result;
}

ConfigResult
runBaseline(const cli::Scenario &scenario)
{
    ConfigResult result;
    result.name = "untraced";
    double best = 0.0;
    for (int rep = 0; rep < kRepeats; ++rep) {
        const auto start = std::chrono::steady_clock::now();
        cli::runScenario(scenario, nullptr);
        const double wall =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - start)
                .count();
        best = rep == 0 ? wall : std::min(best, wall);
    }
    result.wallMillisMin = best;
    return result;
}

} // namespace

int
main()
{
    std::cout << "# Flight-recorder overhead: traced wall-clock vs "
                 "the untraced baseline\n\n";

    const cli::Scenario scenario = benchScenario();

    ConfigResult baseline = runBaseline(scenario);
    std::vector<ConfigResult> results = {
        baseline,
        runConfig(scenario, "off", trace::TraceDetail::Off),
        runConfig(scenario, "requests",
                  trace::TraceDetail::Requests),
        runConfig(scenario, "full", trace::TraceDetail::Full),
    };
    for (ConfigResult &result : results) {
        result.overheadPct = baseline.wallMillisMin > 0.0
            ? (result.wallMillisMin / baseline.wallMillisMin - 1.0) *
                100.0
            : 0.0;
    }

    TextTable table(
        {"config", "wall_ms_min", "overhead_pct", "events"});
    std::vector<bench::JsonRow> rows;
    for (const ConfigResult &result : results) {
        table.addRow({
            result.name,
            formatDouble(result.wallMillisMin, 1),
            formatDouble(result.overheadPct, 2),
            formatDouble(result.eventsRetained, 0),
        });
        rows.push_back(bench::JsonRow{
            {"config", result.name},
            {"wall_ms_min", result.wallMillisMin},
            {"overhead_pct", result.overheadPct},
            {"events_retained", result.eventsRetained},
            {"events_dropped", result.eventsDropped},
            {"off_limit_pct", kOffOverheadLimit * 100.0},
            {"full_limit_pct", kFullOverheadLimit * 100.0},
        });
    }
    table.print(std::cout);

    bench::writeJson("BENCH_trace_overhead.json", "trace_overhead",
                     rows);
    std::cout << "\nWrote BENCH_trace_overhead.json ("
              << (bench::smokeMode() ? "smoke" : "full")
              << " mode).\n";

    const char *enforce = std::getenv("PFS_BENCH_ENFORCE_FLOOR");
    if (enforce != nullptr && *enforce != '\0') {
        if (baseline.wallMillisMin < kMinGateableWallMs) {
            std::cout << "Floor check skipped: baseline "
                      << formatDouble(baseline.wallMillisMin, 1)
                      << " ms is too short to resolve a "
                      << formatDouble(kOffOverheadLimit * 100.0, 0)
                      << "% bound.\n";
            return 0;
        }
        const double off = results[1].overheadPct / 100.0;
        const double full = results[3].overheadPct / 100.0;
        if (off > kOffOverheadLimit || full > kFullOverheadLimit) {
            std::cout << "FLOOR CHECK FAILED: overhead off="
                      << formatDouble(off * 100.0, 2) << "% (limit "
                      << formatDouble(kOffOverheadLimit * 100.0, 0)
                      << "%), full="
                      << formatDouble(full * 100.0, 2) << "% (limit "
                      << formatDouble(kFullOverheadLimit * 100.0, 0)
                      << "%)\n";
            return 1;
        }
        std::cout << "Floor check passed: overhead off="
                  << formatDouble(off * 100.0, 2) << "%, full="
                  << formatDouble(full * 100.0, 2) << "%.\n";
    }
    return 0;
}
