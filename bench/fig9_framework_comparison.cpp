/**
 * @file
 * Figure 9 reproduction: maximum throughput (dashed bars in the
 * paper) and SLA goodput (solid bars) of the five serving-framework
 * profiles — TGI, vLLM, DeepSpeed-MII, TensorRT-LLM, LightLLM —
 * on the ShareGPT workload with max_new_tokens = 2048, across the
 * paper's hardware/model pairings.
 *
 * Expected shape (paper): TensorRT-LLM/vLLM post competitive raw
 * throughput, but conservative schedulers (TGI, MII, TRT-LLM)
 * sacrifice throughput to queueing while the aggressive scheduler
 * (vLLM) sacrifices goodput to evictions; LightLLM's Past-Future
 * scheduler wins goodput on every row.
 */

#include <iostream>

#include "base/str_util.hh"
#include "base/table.hh"
#include "bench_common.hh"
#include "engine/framework_profile.hh"
#include "metrics/sla.hh"

using namespace lightllm;
using namespace lightllm::bench;

namespace {

struct Setup
{
    std::string label;
    model::ModelSpec model;
    model::HardwareSpec hardware;
    metrics::SlaSpec sla;
};

void
runSetup(const Setup &setup, bool equal_backends = false)
{
    const model::PerfModel reference(setup.model, setup.hardware);
    const auto dataset =
        workload::makeShareGpt(smokeSize(500, 48), 91);
    const auto history =
        workload::makeShareGpt(smokeSize(1000, 120), 92);

    std::cout << "## " << setup.label
              << (equal_backends ? " [sensitivity: all backend "
                                   "speed factors = 1]"
                                 : "")
              << "\n\n";
    TextTable table({"Framework", "Scheduler", "Max throughput",
                     "Goodput (SLA)", "Evicted", "p99 TTFT s"});

    for (auto profile : engine::FrameworkProfile::all()) {
        if (equal_backends)
            profile.timeFactor = 1.0;
        // Each framework runs at two load levels; report the best
        // observed throughput and the best observed goodput (the
        // paper's dashed and solid bars).
        double best_throughput = 0.0;
        double best_goodput = 0.0;
        double evicted_at_best = 0.0;
        double ttft_at_best = 0.0;
        for (double fraction :
             smokeTruncate(std::vector<double>{0.8, 1.2}, 1)) {
            ServeOptions options;
            options.numClients =
                sizeClients(reference, dataset, fraction);
            options.warmHistory = outputLengths(history);
            options.engineConfig = profile.toEngineConfig();
            const auto report =
                runClosedLoop(reference, profile.scheduler, dataset,
                              options);
            best_throughput = std::max(
                best_throughput, report.throughputTokensPerSec());
            const double goodput =
                report.goodputTokensPerSec(setup.sla);
            if (goodput > best_goodput) {
                best_goodput = goodput;
                evicted_at_best = report.evictedReqRatio();
                ttft_at_best = report.p99TtftSeconds();
            }
        }
        table.addRow(
            {profile.name,
             core::schedulerKindName(profile.scheduler.kind),
             formatDouble(best_throughput, 0),
             formatDouble(best_goodput, 0),
             formatPercent(evicted_at_best, 1),
             formatDouble(ttft_at_best, 1)});
    }
    table.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main()
{
    std::cout << "# Figure 9: throughput and SLA goodput across "
                 "frameworks and hardware (ShareGPT, "
                 "max_new_tokens=2048)\n\n";

    std::vector<Setup> setups;
    // 7B row: single-GPU platforms.
    for (const auto &hw :
         {model::HardwareSpec::a100_80g(), model::HardwareSpec::h800(),
          model::HardwareSpec::rtx4090(), model::HardwareSpec::a30()}) {
        setups.push_back({"Llama-2-7B-Chat / " + hw.name,
                          model::ModelSpec::llama2_7b(), hw,
                          metrics::SlaSpec::small7b13b()});
    }
    // 13B row: A100/H800 single GPU; 4090 and A30 need 2-way TP.
    setups.push_back({"Llama-2-13B-Chat / A100-80G",
                      model::ModelSpec::llama2_13b(),
                      model::HardwareSpec::a100_80g(),
                      metrics::SlaSpec::small7b13b()});
    setups.push_back({"Llama-2-13B-Chat / H800",
                      model::ModelSpec::llama2_13b(),
                      model::HardwareSpec::h800(),
                      metrics::SlaSpec::small7b13b()});
    setups.push_back({"Llama-2-13B-Chat / RTX-4090 x2",
                      model::ModelSpec::llama2_13b(),
                      model::HardwareSpec::rtx4090()
                          .withTensorParallel(2),
                      metrics::SlaSpec::small7b13b()});
    setups.push_back({"Llama-2-13B-Chat / A30 x2",
                      model::ModelSpec::llama2_13b(),
                      model::HardwareSpec::a30().withTensorParallel(2),
                      metrics::SlaSpec::small7b13b()});
    // 70B row.
    setups.push_back({"Llama-2-70B-Chat / A100-80G x4",
                      model::ModelSpec::llama2_70b(),
                      model::HardwareSpec::a100_80g()
                          .withTensorParallel(4),
                      metrics::SlaSpec::large70b()});
    setups.push_back({"Llama-2-70B-Chat / H800 x4",
                      model::ModelSpec::llama2_70b(),
                      model::HardwareSpec::h800()
                          .withTensorParallel(4),
                      metrics::SlaSpec::large70b()});
    setups.push_back({"Llama-2-70B-Chat / RTX-4090 x8",
                      model::ModelSpec::llama2_70b(),
                      model::HardwareSpec::rtx4090()
                          .withTensorParallel(8),
                      metrics::SlaSpec::large70b()});

    setups = smokeTruncate(std::move(setups), 1);

    for (const auto &setup : setups)
        runSetup(setup);

    // Sensitivity check: the goodput ordering must be driven by the
    // schedulers, not by the assumed backend speed factors.
    runSetup(setups.front(), /*equal_backends=*/true);

    std::cout << "Reading: 'Max throughput' ignores the SLA (the "
                 "paper's dashed bars); 'Goodput' counts only "
                 "SLA-compliant requests (solid bars). Backend "
                 "speed factors are rough relative efficiencies of "
                 "the Dec-2023 framework versions (DESIGN.md); the "
                 "final sensitivity section shows the goodput "
                 "ordering survives setting them all to 1.\n";
    return 0;
}
