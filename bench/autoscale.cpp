/**
 * @file
 * SLA attainment vs instance-seconds under a traffic spike.
 *
 * Not a paper figure: this pins the perf trajectory of the elastic
 * autoscaling subsystem (DESIGN.md §5). A ShareGPT stream runs at a
 * base rate, bursts to 7x for a sustained window, and returns to
 * base. Four fleets serve the identical arrival sequence:
 *
 *  - static-min: the cheap fleet a stationary planner would buy for
 *    the base rate — collapses during the spike;
 *  - static-max: provisioned for the peak the whole run — meets the
 *    SLA by paying peak cost at all hours;
 *  - reactive: threshold+hysteresis on *observed* attainment — it
 *    can only react after violations have already completed;
 *  - predictive: fleet-wide future-memory forecasts — it provisions
 *    when the committed KV demand exceeds headroom, one cold-start
 *    ahead of the violations.
 *
 * The claim BENCH_autoscale.json pins: the predictive controller
 * meets a >= 90% TTFT-attainment target with measurably fewer
 * instance-seconds than the static max-size fleet. A regression
 * shows up as predictive `ttft_attainment` dipping below target or
 * its `instance_seconds` approaching static-max's.
 */

#include <chrono>
#include <iostream>
#include <memory>
#include <vector>

#include "autoscale/autoscaler.hh"
#include "autoscale/scale_policy.hh"
#include "base/str_util.hh"
#include "base/table.hh"
#include "bench_common.hh"
#include "cluster/serving_cluster.hh"
#include "core/scheduler_factory.hh"
#include "engine/serving_engine.hh"
#include "model/perf_model.hh"
#include "workload/arrivals.hh"
#include "workload/datasets.hh"
#include "workload/rate_schedule.hh"

using namespace lightllm;

namespace {

struct SpikeScenario
{
    workload::Dataset dataset;
    workload::RateSchedule schedule =
        workload::RateSchedule::constant(1.0);
    metrics::SlaSpec sla;
    std::size_t minInstances = 2;
    std::size_t maxInstances = 6;
    Tick provisionDelay = secondsToTicks(8.0);
    double sloTarget = 0.9;
};

SpikeScenario
makeScenario()
{
    SpikeScenario scenario;
    const std::size_t requests = bench::smokeSize(2400, 400);
    scenario.dataset = workload::makeShareGpt(requests, 42);
    scenario.sla = metrics::SlaSpec::small7b13b();
    if (bench::smokeMode()) {
        scenario.schedule =
            workload::RateSchedule::spike(3.0, 30.0, 10.0, 15.0);
        scenario.minInstances = 1;
        scenario.maxInstances = 4;
        scenario.provisionDelay = secondsToTicks(4.0);
    } else {
        scenario.schedule =
            workload::RateSchedule::spike(4.0, 28.0, 40.0, 60.0);
    }
    return scenario;
}

std::unique_ptr<engine::ServingEngine>
makeInstance(const SpikeScenario &scenario)
{
    auto config = core::SchedulerConfig::pastFutureDefault(0.03);
    config.pastFuture.seedOutputLen = scenario.dataset.maxNewTokens;
    return std::make_unique<engine::ServingEngine>(
        model::PerfModel(model::ModelSpec::llama2_7b(),
                         model::HardwareSpec::a100_80g()),
        core::makeSchedulingPolicy(config), engine::EngineConfig{});
}

struct FleetResult
{
    metrics::RunReport report;
    double wallMillis = 0.0;
};

/**
 * Serve the scenario's arrival sequence on a fleet of
 * `initial_instances`; `policy_name` empty means a static fleet.
 */
FleetResult
runFleet(const SpikeScenario &scenario,
         std::size_t initial_instances,
         const std::string &policy_name)
{
    std::vector<std::unique_ptr<engine::ServingEngine>> engines;
    engines.reserve(initial_instances);
    for (std::size_t i = 0; i < initial_instances; ++i)
        engines.push_back(makeInstance(scenario));
    cluster::ServingCluster fleet(
        std::move(engines), cluster::RoutingPolicy::FutureMemory);

    if (!policy_name.empty()) {
        fleet.setInstanceFactory(
            [&scenario]() { return makeInstance(scenario); });
        autoscale::AutoscaleConfig config;
        config.minInstances = scenario.minInstances;
        config.maxInstances = scenario.maxInstances;
        config.provisionDelay = scenario.provisionDelay;
        config.sloTarget = scenario.sloTarget;
        config.sla = scenario.sla;
        auto policy = autoscale::makeScalePolicy(
            policy_name, scenario.sloTarget);
        fleet.enableAutoscale(config, std::move(policy));
    }

    workload::submitScheduledArrivals(scenario.dataset, fleet,
                                      scenario.schedule, 42);

    const auto start = std::chrono::steady_clock::now();
    FleetResult result;
    result.report = fleet.run();
    result.wallMillis = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    return result;
}

} // namespace

int
main()
{
    std::cout << "# Autoscale: SLA attainment vs instance-seconds "
                 "under a 7x traffic spike\n\n";

    const SpikeScenario scenario = makeScenario();
    std::cout << "schedule: " << scenario.schedule.describe()
              << ", " << scenario.dataset.requests.size()
              << " requests, target "
              << formatPercent(scenario.sloTarget, 0)
              << " TTFT attainment\n\n";

    struct Lineup
    {
        std::string label;
        std::size_t instances;
        std::string policy;  // empty = static
    };
    const std::vector<Lineup> lineups{
        {"static-min", scenario.minInstances, ""},
        {"static-max", scenario.maxInstances, ""},
        {"reactive", scenario.minInstances, "reactive"},
        {"predictive", scenario.minInstances, "predictive"},
    };

    TextTable table({"fleet", "ttft_attainment", "sla_compliance",
                     "p99_ttft_s", "instance_seconds",
                     "peak_instances", "makespan_s"});
    std::vector<bench::JsonRow> rows;
    double static_max_cost = 0.0;
    double predictive_cost = 0.0;
    double predictive_attainment = 0.0;
    for (const Lineup &lineup : lineups) {
        const FleetResult result =
            runFleet(scenario, lineup.instances, lineup.policy);
        const metrics::RunReport &report = result.report;
        const double attainment =
            report.ttftAttainment(scenario.sla);
        if (lineup.label == "static-max")
            static_max_cost = report.instanceSeconds;
        if (lineup.label == "predictive") {
            predictive_cost = report.instanceSeconds;
            predictive_attainment = attainment;
        }
        table.addRow({
            lineup.label,
            formatPercent(attainment, 2),
            formatPercent(report.slaCompliantFraction(
                              scenario.sla),
                          2),
            formatDouble(report.p99TtftSeconds(), 2),
            formatDouble(report.instanceSeconds, 1),
            formatCount(static_cast<std::int64_t>(
                report.peakInstances)),
            formatDouble(ticksToSeconds(report.makespan), 1),
        });
        rows.push_back(bench::JsonRow{
            {"fleet", lineup.label},
            {"finished",
             static_cast<double>(report.numFinished)},
            {"ttft_attainment", attainment},
            {"sla_compliance",
             report.slaCompliantFraction(scenario.sla)},
            {"p50_ttft_s", report.p50TtftSeconds()},
            {"p90_ttft_s", report.p90TtftSeconds()},
            {"p99_ttft_s", report.p99TtftSeconds()},
            {"goodput_tok_s",
             report.goodputTokensPerSec(scenario.sla)},
            {"instance_seconds", report.instanceSeconds},
            {"peak_instances",
             static_cast<double>(report.peakInstances)},
            {"scale_up_events",
             static_cast<double>(report.scaleUpEvents)},
            {"scale_down_events",
             static_cast<double>(report.scaleDownEvents)},
            {"makespan_s", ticksToSeconds(report.makespan)},
            {"wall_ms", result.wallMillis},
        });
    }
    table.print(std::cout);

    rows.push_back(bench::JsonRow{
        {"fleet", "claim"},
        {"slo_target", scenario.sloTarget},
        {"predictive_meets_target",
         predictive_attainment >= scenario.sloTarget ? 1.0 : 0.0},
        {"predictive_vs_static_max_cost",
         static_max_cost > 0.0 ? predictive_cost / static_max_cost
                               : 0.0},
    });
    bench::writeJson("BENCH_autoscale.json", "autoscale", rows);
    std::cout
        << "\nWrote BENCH_autoscale.json ("
        << (bench::smokeMode() ? "smoke" : "full")
        << " mode). Reading: predictive should meet the "
        << formatPercent(scenario.sloTarget, 0)
        << " TTFT-attainment target with instance_seconds "
           "measurably below static-max (its forecasts buy the "
           "cold start back); reactive shows what detecting "
           "violations only after they complete costs; static-min "
           "is the spike collapsing.\n";
    return 0;
}
