/**
 * @file
 * Figure 3 reproduction: cosine similarity of output-length
 * distributions between partitioned time windows (1000 requests, no
 * overlap) for six service traces.
 *
 * Expected shape (paper): single-service traces (a, c, d, e, f) are
 * similar globally; the API/hybrid trace (b) drifts over long
 * horizons but stays similar on the diagonal (adjacent windows) —
 * the property that justifies predicting from recent history.
 */

#include <algorithm>
#include <iostream>

#include "base/str_util.hh"
#include "base/table.hh"
#include "bench_common.hh"
#include "stats/window_analysis.hh"
#include "workload/trace_gen.hh"

using namespace lightllm;

namespace {

/** Compact ASCII heatmap of a similarity matrix. */
void
printHeatmap(const stats::SimilarityMatrix &matrix)
{
    // Coarse 10-level shading.
    const char shades[] = " .:-=+*#%@";
    for (std::size_t i = 0; i < matrix.numWindows; ++i) {
        std::cout << "    ";
        for (std::size_t j = 0; j < matrix.numWindows; ++j) {
            const double value = matrix.at(i, j);
            auto level = static_cast<int>(value * 10.0);
            level = std::clamp(level, 0, 9);
            std::cout << shades[level];
        }
        std::cout << "\n";
    }
}

} // namespace

int
main()
{
    std::cout << "# Figure 3: output-length distribution similarity "
                 "between 1000-request windows\n\n";

    const auto traces = workload::makeFigure3Traces(
        bench::smokeSize(20000, 4000), 42);

    TextTable summary({"Trace", "Adjacent-window mean",
                       "Global mean", "Windows"});
    for (const auto &trace : traces) {
        const auto matrix = stats::windowSimilarityMatrix(
            trace.outputLens(), 1000);
        summary.addRow({trace.name,
                        formatDouble(matrix.adjacentMean(), 3),
                        formatDouble(matrix.globalMean(), 3),
                        std::to_string(matrix.numWindows)});
    }
    summary.print(std::cout);
    std::cout << "\n";

    for (const auto &trace : traces) {
        const auto matrix = stats::windowSimilarityMatrix(
            trace.outputLens(), 1000);
        std::cout << trace.name << " (darker = more similar):\n";
        printHeatmap(matrix);
        std::cout << "\n";
    }

    std::cout << "Reading: every trace shows a bright diagonal "
                 "(adjacent windows similar); only the API-style "
                 "trace fades away from the diagonal.\n";
    return 0;
}
