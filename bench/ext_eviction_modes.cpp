/**
 * @file
 * Extension bench (beyond the paper's figures): recompute vs swap
 * eviction.
 *
 * §2.4/§6 note that evicted requests need "recomputation or
 * swapping"; the paper's engine uses recompute. This bench
 * quantifies the choice on the decode-heavy distribution where the
 * aggressive scheduler evicts constantly: swap trades recompute
 * FLOPs for host-link transfers, shortening eviction stalls (better
 * MTPOT) at the same eviction counts, and the Past-Future scheduler
 * makes the choice nearly irrelevant by barely evicting at all.
 */

#include <iostream>

#include "base/str_util.hh"
#include "base/table.hh"
#include "bench_common.hh"
#include "metrics/sla.hh"

using namespace lightllm;
using namespace lightllm::bench;

int
main()
{
    std::cout << "# Extension: eviction handling - recompute vs "
                 "swap (Llama-2-7B / A100-80G, Distribution-1)\n\n";

    const auto dataset =
        workload::makeDistribution1(smokeSize(600, 60), 61);
    const auto history =
        workload::makeDistribution1(smokeSize(1000, 120), 62);
    model::PerfModel perf(model::ModelSpec::llama2_7b(),
                          model::HardwareSpec::a100_80g());
    const auto sla = metrics::SlaSpec::small7b13b();

    struct Row
    {
        std::string label;
        core::SchedulerConfig scheduler;
        engine::EvictionMode mode;
    };
    const std::vector<Row> rows = {
        {"Aggressive(99%) + recompute",
         core::SchedulerConfig::aggressive(0.99),
         engine::EvictionMode::Recompute},
        {"Aggressive(99%) + swap",
         core::SchedulerConfig::aggressive(0.99),
         engine::EvictionMode::Swap},
        {"Past-Future(5%) + recompute",
         core::SchedulerConfig::pastFutureDefault(0.05),
         engine::EvictionMode::Recompute},
        {"Past-Future(5%) + swap",
         core::SchedulerConfig::pastFutureDefault(0.05),
         engine::EvictionMode::Swap},
    };

    TextTable table({"Configuration", "Goodput tok/s", "Evicted",
                     "Swap transfers", "Prefill tokens",
                     "p99 MTPOT s"});
    for (const auto &row : rows) {
        ServeOptions options;
        options.numClients = sizeClients(perf, dataset, 0.95);
        options.warmHistory = outputLengths(history);
        options.engineConfig.evictionMode = row.mode;
        const auto report =
            runClosedLoop(perf, row.scheduler, dataset, options);
        table.addRow(
            {row.label,
             formatDouble(report.goodputTokensPerSec(sla), 0),
             formatPercent(report.evictedReqRatio(), 1),
             formatCount(report.swapEvents),
             formatCount(report.totalPrefillTokens),
             formatDouble(report.p99MtpotSeconds(), 2)});
    }
    table.print(std::cout);

    std::cout << "\nReading: swap removes the recompute prefills "
                 "(compare prefill tokens) and shortens eviction "
                 "stalls; the Past-Future rows show the scheduler "
                 "fix dominates the eviction-handling fix.\n";
    return 0;
}
