/**
 * @file
 * Table 2 reproduction: throughput of the original (static-batch)
 * implementations vs LightLLM (continuous batching + Past-Future)
 * for Qwen-VL-Chat, LLaVA-1.5-7B and LLaVA-1.5-13B on a
 * TextVQA-like multimodal workload.
 *
 * Expected shape (paper): LightLLM gains roughly 1.5-2x throughput
 * (paper: +50% on Qwen-VL-Chat, +60% on LLaVA-1.5-7B, +87% on
 * LLaVA-1.5-13B) because the image-token prefix inflates per-slot
 * padding in static batching, while continuous batching recycles
 * finished requests' memory immediately.
 */

#include <iostream>

#include "base/str_util.hh"
#include "base/table.hh"
#include "bench_common.hh"
#include "engine/static_engine.hh"

using namespace lightllm;
using namespace lightllm::bench;

int
main()
{
    std::cout << "# Table 2: multimodal serving throughput "
                 "(TextVQA-like workload, A100-80G)\n\n";

    TextTable table({"Model", "Origin (static batch) tok/s",
                     "LightLLM (Past-Future) tok/s", "Speedup"});

    for (const auto &spec :
         {model::ModelSpec::qwenVlChat(), model::ModelSpec::llava15_7b(),
          model::ModelSpec::llava15_13b()}) {
        const model::PerfModel perf(spec,
                                    model::HardwareSpec::a100_80g());
        const auto dataset = workload::makeTextVqaLike(
            smokeSize(1500, 120), spec.imageTokens, 71);
        const auto history = workload::makeTextVqaLike(
            smokeSize(1000, 120), spec.imageTokens, 72);

        // Origin: HF-style static batching over contiguous memory.
        // Batch size 32 mirrors the modest batches the original
        // implementations served with (capacity-sized batches would
        // decode-until-slowest far longer and flatter the baseline).
        engine::StaticEngineConfig origin_config;
        origin_config.batchSize = 32;
        const auto origin =
            engine::runStaticBatch(perf, dataset, origin_config);

        // LightLLM: continuous batching + Past-Future scheduler,
        // offline throughput measurement (all requests queued).
        ServeOptions options;
        options.numClients = dataset.requests.size();
        options.warmHistory = outputLengths(history);
        const auto lightllm = runClosedLoop(
            perf, core::SchedulerConfig::pastFutureDefault(0.05),
            dataset, options);

        const double origin_tput = origin.throughputTokensPerSec();
        const double lightllm_tput =
            lightllm.throughputTokensPerSec();
        table.addRow({spec.name, formatDouble(origin_tput, 2),
                      formatDouble(lightllm_tput, 2),
                      formatDouble(lightllm_tput / origin_tput, 2) +
                          "x"});
    }
    table.print(std::cout);

    std::cout << "\nReading: both engines serve the same requests "
                 "on the same simulated hardware; only the batching "
                 "and scheduling differ.\n";
    return 0;
}
