/**
 * @file
 * Fleet-scale throughput of the event-driven simulation core.
 *
 * Not a paper figure: this seeds the repo's performance trajectory.
 * The co-simulation is one shared event queue, so its cost per
 * simulated second must stay near-flat as the fleet grows — this
 * bench sweeps 1 → 128 Past-Future instances behind the
 * future-memory router under proportional closed-loop load and
 * reports wall-clock simulated-requests/sec, events/sec, and the
 * process peak RSS after each point (memory must scale with the
 * fleet, not blow up with it). Results land in
 * BENCH_fleet_scale.json (bench::writeJson) so CI can archive every
 * run and regressions show up as a drop in sim_req_per_sec at the
 * same fleet size.
 */

#include <sys/resource.h>

#include <chrono>
#include <iostream>
#include <memory>
#include <vector>

#include "base/str_util.hh"
#include "base/table.hh"
#include "bench_common.hh"
#include "cluster/serving_cluster.hh"
#include "core/scheduler_factory.hh"
#include "engine/serving_engine.hh"
#include "model/perf_model.hh"
#include "workload/client_pool.hh"
#include "workload/datasets.hh"

using namespace lightllm;

namespace {

struct ScalePoint
{
    std::size_t instances;
    std::size_t requests;
    std::size_t finished;
    double makespanSeconds;
    double wallMillis;
    double simReqPerSec;
    double eventsPerSec;
    double peakRssMb;
};

/**
 * Process high-water resident set in MiB. ru_maxrss is monotone over
 * the process lifetime, so within the sweep each point reports the
 * peak up to and including that fleet size — the 128-instance row is
 * the number that matters.
 */
double
peakRssMb()
{
    struct rusage usage
    {
    };
    getrusage(RUSAGE_SELF, &usage);
    return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

ScalePoint
runFleet(std::size_t instances)
{
    // Load scales with the fleet so per-instance pressure stays
    // constant: the sweep isolates the cost of the shared event
    // core, not a shifting operating point.
    const std::size_t requests =
        bench::smokeSize(192, 24) * instances;
    const std::size_t clients = 24 * instances;
    const auto dataset = workload::makeShareGpt(requests, 42);

    auto config = core::SchedulerConfig::pastFutureDefault(0.05);
    config.pastFuture.seedOutputLen = dataset.maxNewTokens;

    const model::PerfModel perf(model::ModelSpec::llama2_7b(),
                                model::HardwareSpec::a100_80g());
    std::vector<std::unique_ptr<engine::ServingEngine>> engines;
    engines.reserve(instances);
    for (std::size_t i = 0; i < instances; ++i) {
        engines.push_back(std::make_unique<engine::ServingEngine>(
            perf, core::makeScheduler(config)));
    }
    cluster::ServingCluster fleet(
        std::move(engines), cluster::RoutingPolicy::FutureMemory);

    workload::ClosedLoopClientPool pool(clients, dataset, fleet);
    fleet.setOnFinish(
        [&](const workload::RequestSpec &spec, Tick tick) {
            pool.onRequestFinished(spec.id, tick);
        });

    const auto start = std::chrono::steady_clock::now();
    pool.start();
    const auto report = fleet.run();
    const auto wall = std::chrono::duration<double, std::milli>(
        std::chrono::steady_clock::now() - start);

    // Arrivals + steps + completions all pass through the shared
    // queue; what remains pending after a run to completion is zero,
    // so the fired-event count is a clean per-run cost unit.
    const double events =
        static_cast<double>(report.decodeSteps) +
        static_cast<double>(report.prefillIterations) +
        2.0 * static_cast<double>(report.numFinished);

    ScalePoint point;
    point.instances = instances;
    point.requests = requests;
    point.finished = report.numFinished;
    point.makespanSeconds = ticksToSeconds(report.makespan);
    point.wallMillis = wall.count();
    point.simReqPerSec = wall.count() > 0.0
        ? static_cast<double>(report.numFinished) /
            (wall.count() / 1e3)
        : 0.0;
    point.eventsPerSec =
        wall.count() > 0.0 ? events / (wall.count() / 1e3) : 0.0;
    point.peakRssMb = peakRssMb();
    return point;
}

} // namespace

int
main()
{
    std::cout << "# Fleet scale: event-driven co-simulation "
                 "throughput, 1 -> 128 instances\n\n";

    const std::vector<std::size_t> sweep = bench::smokeTruncate(
        std::vector<std::size_t>{1, 2, 4, 8, 16, 32, 64, 128}, 3);

    TextTable table({"instances", "requests", "makespan_s",
                     "wall_ms", "sim_req_per_s",
                     "approx_events_per_s", "peak_rss_mb"});
    std::vector<bench::JsonRow> rows;
    for (std::size_t instances : sweep) {
        const ScalePoint point = runFleet(instances);
        table.addRow({
            formatCount(static_cast<std::int64_t>(point.instances)),
            formatCount(static_cast<std::int64_t>(point.requests)),
            formatDouble(point.makespanSeconds, 2),
            formatDouble(point.wallMillis, 1),
            formatDouble(point.simReqPerSec, 1),
            formatDouble(point.eventsPerSec, 0),
            formatDouble(point.peakRssMb, 1),
        });
        rows.push_back(bench::JsonRow{
            {"instances", static_cast<double>(point.instances)},
            {"requests", static_cast<double>(point.requests)},
            {"finished", static_cast<double>(point.finished)},
            {"makespan_s", point.makespanSeconds},
            {"wall_ms", point.wallMillis},
            {"sim_req_per_sec", point.simReqPerSec},
            {"events_per_sec", point.eventsPerSec},
            {"peak_rss_mb", point.peakRssMb},
        });
    }
    table.print(std::cout);

    bench::writeJson("BENCH_fleet_scale.json", "fleet_scale", rows);
    std::cout << "\nWrote BENCH_fleet_scale.json ("
              << (bench::smokeMode() ? "smoke" : "full")
              << " mode). Reading: sim_req_per_sec is wall-clock "
                 "simulation throughput; it should decay roughly "
                 "linearly with fleet size (total work grows with "
                 "instances) while events_per_sec stays flat if the "
                 "shared event core scales; peak_rss_mb should grow "
                 "linearly with the fleet.\n";
    return 0;
}
