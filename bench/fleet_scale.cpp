/**
 * @file
 * Fleet-scale throughput of the event-driven simulation core,
 * single-threaded and sharded.
 *
 * Not a paper figure: this seeds the repo's performance trajectory.
 * The sweep has two axes. The instance axis (1 -> 1024 Past-Future
 * instances behind the future-memory router, proportional
 * closed-loop load) shows the shared event core's cost staying
 * near-flat as the fleet grows. The thread axis re-runs the large
 * fleets under `sim::ShardedSimContext` (DESIGN.md §9) — results
 * are bit-identical to the single-threaded rows, so the only
 * deltas worth reading are wall-clock ones. The headline is the
 * 512-instance speedup at 8 threads.
 *
 * Memory per point is sampled as a *delta* of the current resident
 * set around each run (getrusage's ru_maxrss is a process-lifetime
 * high-water mark, so consecutive sweep points would just repeat
 * the largest earlier peak); the absolute peak is still reported
 * last. Results land in BENCH_fleet_scale.json (bench::writeJson)
 * so CI can archive every run; on Release CI runs with at least 8
 * cores, PFS_BENCH_ENFORCE_FLOOR pins the 8-thread speedup.
 */

#include <sys/resource.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "base/str_util.hh"
#include "base/table.hh"
#include "bench_common.hh"
#include "cluster/serving_cluster.hh"
#include "core/scheduler_factory.hh"
#include "engine/serving_engine.hh"
#include "model/perf_model.hh"
#include "sim/sharded_sim_context.hh"
#include "sim/sim_context.hh"
#include "workload/client_pool.hh"
#include "workload/datasets.hh"

using namespace lightllm;

namespace {

/** One (instances, threads) sweep point. */
struct SweepSpec
{
    std::size_t instances;
    std::uint32_t threads;
};

struct ScalePoint
{
    std::size_t instances;
    std::uint32_t threads;
    std::size_t requests;
    std::size_t finished;
    double makespanSeconds;
    double wallMillis;
    double simReqPerSec;
    double eventsPerSec;
    double rssDeltaMb;
    double peakRssMb;
};

/** Process high-water resident set in MiB (monotone over the
 *  process lifetime — useful only as the sweep's final summary). */
double
peakRssMb()
{
    struct rusage usage
    {
    };
    getrusage(RUSAGE_SELF, &usage);
    return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

/**
 * Current resident set in MiB from /proc/self/statm, which — unlike
 * ru_maxrss — goes back down when a sweep point's fleet is torn
 * down, so per-point deltas are meaningful. Falls back to the
 * monotone peak where /proc is unavailable.
 */
double
currentRssMb()
{
    std::ifstream statm("/proc/self/statm");
    long long pages_total = 0;
    long long pages_resident = 0;
    if (statm >> pages_total >> pages_resident) {
        const long long page_size = sysconf(_SC_PAGESIZE);
        return static_cast<double>(pages_resident) *
            static_cast<double>(page_size) / (1024.0 * 1024.0);
    }
    return peakRssMb();
}

ScalePoint
runFleet(std::size_t instances, std::uint32_t threads)
{
    // Load scales with the fleet so per-instance pressure stays
    // constant: the sweep isolates the cost of the shared event
    // core, not a shifting operating point.
    const std::size_t requests =
        bench::smokeSize(192, 24) * instances;
    const std::size_t clients = 24 * instances;
    const auto dataset = workload::makeShareGpt(requests, 42);

    auto config = core::SchedulerConfig::pastFutureDefault(0.05);
    config.pastFuture.seedOutputLen = dataset.maxNewTokens;

    const model::PerfModel perf(model::ModelSpec::llama2_7b(),
                                model::HardwareSpec::a100_80g());

    const double rss_before = currentRssMb();
    double rss_after = 0.0;
    const auto start = std::chrono::steady_clock::now();
    metrics::RunReport report;
    {
        std::vector<std::unique_ptr<engine::ServingEngine>> engines;
        engines.reserve(instances);
        for (std::size_t i = 0; i < instances; ++i) {
            engines.push_back(
                std::make_unique<engine::ServingEngine>(
                    perf, core::makeScheduler(config)));
        }

        // threads == 1 is the classic cluster-owned single-queue
        // loop; K > 1 shards the engines across a hub enrolled on
        // an external root context (the CLI's --sim-threads path).
        sim::SimContext root;
        std::unique_ptr<sim::ShardedSimContext> hub;
        if (threads > 1) {
            hub = std::make_unique<sim::ShardedSimContext>(root,
                                                           threads);
        }
        std::unique_ptr<cluster::ServingCluster> fleet;
        if (hub) {
            fleet = std::make_unique<cluster::ServingCluster>(
                std::move(engines),
                cluster::RoutingPolicy::FutureMemory, root);
        } else {
            fleet = std::make_unique<cluster::ServingCluster>(
                std::move(engines),
                cluster::RoutingPolicy::FutureMemory);
        }

        workload::ClosedLoopClientPool pool(clients, dataset,
                                            *fleet);
        fleet->setOnFinish(
            [&](const workload::RequestSpec &spec, Tick tick) {
                pool.onRequestFinished(spec.id, tick);
            });

        pool.start();
        report = fleet->run();
        // Sample while the fleet (engines, KV managers, event
        // arenas) is still alive — this point's true footprint.
        rss_after = currentRssMb();
    }
    const auto wall = std::chrono::duration<double, std::milli>(
        std::chrono::steady_clock::now() - start);

    // Arrivals + steps + completions all pass through the event
    // core; what remains pending after a run to completion is zero,
    // so the fired-event count is a clean per-run cost unit.
    const double events =
        static_cast<double>(report.decodeSteps) +
        static_cast<double>(report.prefillIterations) +
        2.0 * static_cast<double>(report.numFinished);

    ScalePoint point;
    point.instances = instances;
    point.threads = threads;
    point.requests = requests;
    point.finished = report.numFinished;
    point.makespanSeconds = ticksToSeconds(report.makespan);
    point.wallMillis = wall.count();
    point.simReqPerSec = wall.count() > 0.0
        ? static_cast<double>(report.numFinished) /
            (wall.count() / 1e3)
        : 0.0;
    point.eventsPerSec =
        wall.count() > 0.0 ? events / (wall.count() / 1e3) : 0.0;
    point.rssDeltaMb = rss_after - rss_before;
    point.peakRssMb = peakRssMb();
    return point;
}

} // namespace

int
main()
{
    std::cout << "# Fleet scale: event-driven co-simulation "
                 "throughput, instance x thread sweep\n\n";

    // Instance axis first (threads = 1), then the sharded re-runs
    // of the large fleets, then the 1024-instance capstone. Smoke
    // mode keeps one tiny point per axis so the sharded path can
    // never silently rot.
    std::vector<SweepSpec> sweep;
    if (bench::smokeMode()) {
        sweep = {{1, 1}, {2, 1}, {4, 2}, {4, 8}};
    } else {
        sweep = {{1, 1},    {2, 1},    {4, 1},   {8, 1},
                 {16, 1},   {32, 1},   {64, 1},  {128, 1},
                 {256, 1},  {512, 1},  {512, 2}, {512, 4},
                 {512, 8},  {1024, 8}};
    }

    TextTable table({"instances", "threads", "requests",
                     "makespan_s", "wall_ms", "sim_req_per_s",
                     "approx_events_per_s", "rss_delta_mb"});
    std::vector<bench::JsonRow> rows;
    double base512 = 0.0;
    double sharded512 = 0.0;
    for (const SweepSpec &spec : sweep) {
        const ScalePoint point =
            runFleet(spec.instances, spec.threads);
        if (point.instances == 512 && point.threads == 1)
            base512 = point.eventsPerSec;
        if (point.instances == 512 && point.threads == 8)
            sharded512 = point.eventsPerSec;
        table.addRow({
            formatCount(static_cast<std::int64_t>(point.instances)),
            formatCount(static_cast<std::int64_t>(point.threads)),
            formatCount(static_cast<std::int64_t>(point.requests)),
            formatDouble(point.makespanSeconds, 2),
            formatDouble(point.wallMillis, 1),
            formatDouble(point.simReqPerSec, 1),
            formatDouble(point.eventsPerSec, 0),
            formatDouble(point.rssDeltaMb, 1),
        });
        rows.push_back(bench::JsonRow{
            {"instances", static_cast<double>(point.instances)},
            {"threads", static_cast<double>(point.threads)},
            {"requests", static_cast<double>(point.requests)},
            {"finished", static_cast<double>(point.finished)},
            {"makespan_s", point.makespanSeconds},
            {"wall_ms", point.wallMillis},
            {"sim_req_per_sec", point.simReqPerSec},
            {"events_per_sec", point.eventsPerSec},
            {"rss_delta_mb", point.rssDeltaMb},
            {"peak_rss_mb", point.peakRssMb},
        });
    }
    table.print(std::cout);

    bench::writeJson("BENCH_fleet_scale.json", "fleet_scale", rows);
    std::cout << "\nWrote BENCH_fleet_scale.json ("
              << (bench::smokeMode() ? "smoke" : "full")
              << " mode). Reading: sim_req_per_sec is wall-clock "
                 "simulation throughput; events_per_sec should stay "
                 "flat along the instance axis if the event core "
                 "scales, and climb along the thread axis; "
                 "rss_delta_mb is each point's own footprint "
                 "(current-RSS delta around the run, not the "
                 "monotone process peak) and should grow linearly "
                 "with the fleet.\n";

    const unsigned cores = std::thread::hardware_concurrency();
    if (base512 > 0.0 && sharded512 > 0.0) {
        std::cout << "512-instance speedup at 8 threads: "
                  << formatDouble(sharded512 / base512, 2) << "x ("
                  << cores << " cores available)\n";
    }

    // Speedup floor, enforced on Release CI only (and only where
    // the machine can actually run 8 compute threads): generous
    // slack under the >=4x headline so scheduler jitter does not
    // flake the gate, while a serialization regression (windows
    // collapsing, barrier contention) still fails loudly.
    const char *enforce = std::getenv("PFS_BENCH_ENFORCE_FLOOR");
    if (enforce != nullptr && *enforce != '\0' &&
        !bench::smokeMode() && base512 > 0.0 && sharded512 > 0.0) {
        if (cores < 8) {
            std::cout << "Floor check skipped: " << cores
                      << " cores cannot host 8 compute threads\n";
            return 0;
        }
        const double speedup = sharded512 / base512;
        if (speedup < 2.0) {
            std::cout << "FLOOR CHECK FAILED: 512-instance "
                         "8-thread speedup "
                      << formatDouble(speedup, 2)
                      << "x is below the pinned 2x floor\n";
            return 1;
        }
        std::cout << "Floor check passed: speedup "
                  << formatDouble(speedup, 2) << "x >= 2x\n";
    }
    return 0;
}
