/**
 * @file
 * Victim-tenant p99 TTFT under a 10x noisy-neighbor spike.
 *
 * Not a paper figure: this pins the isolation property of the
 * scheduler-node tree (DESIGN.md §6). A well-behaved victim tenant
 * streams steady traffic; midway through, an aggressor tenant
 * bursts the same request shape at 10x the victim's rate. Three
 * runs serve the identical arrival sequences on one engine:
 *
 *  - solo: the victim alone — the TTFT the tenant was promised;
 *  - flat: both tenants through the flat FCFS waiting queue — the
 *    spike floods the queue and the victim waits behind it;
 *  - tree: both tenants through `--tenant-tree` (equal-weight DRR
 *    over per-tenant leaves, each throttled at its provisioned
 *    token rate) — the aggressor's backlog queues in its own
 *    subtree instead of saturating the machine, so the victim's
 *    subtree keeps solo-like service.
 *
 * The claim BENCH_tenant_isolation.json pins: the tree keeps the
 * victim's p99 TTFT within 1.5x of solo while the flat queue lets
 * it degrade past 3x. A regression shows up as `tree_over_solo`
 * rising toward `flat_over_solo`.
 */

#include <algorithm>
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "base/str_util.hh"
#include "base/table.hh"
#include "bench_common.hh"
#include "core/scheduler_factory.hh"
#include "engine/serving_engine.hh"
#include "metrics/report.hh"
#include "model/perf_model.hh"
#include "workload/arrivals.hh"
#include "workload/datasets.hh"

using namespace lightllm;

namespace {

struct IsolationScenario
{
    workload::Dataset victim;
    workload::Dataset aggressor;
    double victimRate = 4.0;
    double aggressorRate = 40.0;  // the 10x spike
    Tick spikeStart = 0;
};

/** Tag every request in `dataset` with one tenant identity. */
void
tagTenant(workload::Dataset &dataset, base::TenantId tenant,
          RequestId id_offset)
{
    for (workload::RequestSpec &spec : dataset.requests) {
        spec.id += id_offset;
        spec.cls.tenant = tenant;
    }
}

IsolationScenario
makeScenario()
{
    IsolationScenario scenario;
    const std::size_t victims = bench::smokeSize(400, 60);
    const std::size_t aggressors = bench::smokeSize(1600, 240);
    // Victim: chat-sized requests the engine serves comfortably.
    scenario.victim = workload::makeUniformDataset(
        "victim", victims, 128, 256, 32, 64, 64, 101);
    tagTenant(scenario.victim, 0, 0);
    // Aggressor: the same request shape at 10x the arrival rate,
    // bursting once the victim's stream is in steady state. Rate
    // (not size) is the noisy-neighbor axis: the queue floods but
    // slot turnover stays fast, so fair admission can still slot
    // the victim in.
    scenario.aggressor = workload::makeUniformDataset(
        "aggressor", aggressors, 128, 256, 32, 64, 64, 202);
    tagTenant(scenario.aggressor, 1,
              static_cast<RequestId>(victims));
    scenario.spikeStart =
        secondsToTicks(bench::smokeMode() ? 4.0 : 25.0);
    return scenario;
}

/** A capacity-bound engine: the spike must queue, not just batch. */
model::PerfModel
benchPerf()
{
    model::HardwareSpec hw = model::HardwareSpec::a100_80g();
    // Weights (~13.5 GB) plus a deliberately small KV budget.
    hw.memBytesPerDevice = static_cast<ByteCount>(20e9);
    return model::PerfModel(model::ModelSpec::llama2_7b(), hw);
}

/** TTFT percentile in seconds over one tenant's requests. */
double
tenantTtftSeconds(const metrics::RunReport &report,
                  base::TenantId tenant, std::size_t percent)
{
    std::vector<Tick> samples;
    for (const metrics::RequestRecord &record : report.requests) {
        if (record.cls.tenant == tenant)
            samples.push_back(record.ttft());
    }
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    const std::size_t rank = std::min(
        samples.size() - 1, (samples.size() * percent) / 100);
    return ticksToSeconds(samples[rank]);
}

struct IsolationResult
{
    metrics::RunReport report;
    double victimP99 = 0.0;
    double wallMillis = 0.0;
};

IsolationResult
runLineup(const IsolationScenario &scenario, bool with_aggressor,
          bool tenant_tree)
{
    auto config = core::SchedulerConfig::pastFutureDefault(0.03);
    config.pastFuture.seedOutputLen =
        scenario.victim.maxNewTokens;
    if (tenant_tree) {
        config.tenantTree = true;
        config.tenantSpec.numTenants = 2;
        // Each tenant's subtree is throttled at its provisioned
        // token rate (with one second of burst credit): the victim
        // never reaches its cap, while the aggressor's 10x spike
        // queues in its own subtree instead of saturating KV
        // memory. DRR alone shares the *service*; the throttler is
        // what keeps the machine unsaturated for the victim.
        config.tenantSpec.tokensPerSecond = 3500.0;
        config.tenantSpec.burstTokens = 1200;
    }
    engine::ServingEngine engine(
        benchPerf(), core::makeSchedulingPolicy(config),
        engine::EngineConfig{});

    workload::submitPoissonArrivals(scenario.victim, engine,
                                    scenario.victimRate, 7);
    if (with_aggressor) {
        workload::submitPoissonArrivals(
            scenario.aggressor, engine, scenario.aggressorRate, 11,
            scenario.spikeStart);
    }

    const auto start = std::chrono::steady_clock::now();
    IsolationResult result;
    result.report = engine.run();
    result.wallMillis = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    result.victimP99 = tenantTtftSeconds(result.report, 0, 99);
    return result;
}

} // namespace

int
main()
{
    std::cout << "# Tenant isolation: victim p99 TTFT under a 10x "
                 "noisy-neighbor spike\n\n";

    const IsolationScenario scenario = makeScenario();
    std::cout << scenario.victim.requests.size() << " victim + "
              << scenario.aggressor.requests.size()
              << " aggressor requests, victim "
              << scenario.victimRate << "/s, aggressor "
              << scenario.aggressorRate << "/s from t="
              << ticksToSeconds(scenario.spikeStart) << "s\n\n";

    struct Lineup
    {
        std::string label;
        bool aggressor;
        bool tree;
    };
    const std::vector<Lineup> lineups{
        {"solo", false, false},
        {"flat", true, false},
        {"tree", true, true},
    };

    TextTable table({"lineup", "scheduler", "victim_p50_ttft_s",
                     "victim_p90_ttft_s", "victim_p99_ttft_s",
                     "aggressor_p99_ttft_s", "finished",
                     "makespan_s"});
    std::vector<bench::JsonRow> rows;
    double solo_p99 = 0.0;
    double flat_p99 = 0.0;
    double tree_p99 = 0.0;
    for (const Lineup &lineup : lineups) {
        const IsolationResult result =
            runLineup(scenario, lineup.aggressor, lineup.tree);
        const metrics::RunReport &report = result.report;
        if (lineup.label == "solo")
            solo_p99 = result.victimP99;
        if (lineup.label == "flat")
            flat_p99 = result.victimP99;
        if (lineup.label == "tree")
            tree_p99 = result.victimP99;
        const double victim_p50 = tenantTtftSeconds(report, 0, 50);
        const double victim_p90 = tenantTtftSeconds(report, 0, 90);
        const double aggressor_p99 = tenantTtftSeconds(report, 1, 99);
        table.addRow({
            lineup.label,
            report.schedulerName,
            formatDouble(victim_p50, 3),
            formatDouble(victim_p90, 3),
            formatDouble(result.victimP99, 3),
            formatDouble(aggressor_p99, 3),
            formatCount(
                static_cast<std::int64_t>(report.numFinished)),
            formatDouble(ticksToSeconds(report.makespan), 1),
        });
        rows.push_back(bench::JsonRow{
            {"lineup", lineup.label},
            {"scheduler", report.schedulerName},
            {"victim_p50_ttft_s", victim_p50},
            {"victim_p90_ttft_s", victim_p90},
            {"victim_p99_ttft_s", result.victimP99},
            {"aggressor_p99_ttft_s", aggressor_p99},
            {"finished",
             static_cast<double>(report.numFinished)},
            {"p99_ttft_s", report.p99TtftSeconds()},
            {"throughput_tok_s", report.throughputTokensPerSec()},
            {"makespan_s", ticksToSeconds(report.makespan)},
            {"wall_ms", result.wallMillis},
        });
    }
    table.print(std::cout);

    const double flat_over_solo =
        solo_p99 > 0.0 ? flat_p99 / solo_p99 : 0.0;
    const double tree_over_solo =
        solo_p99 > 0.0 ? tree_p99 / solo_p99 : 0.0;
    rows.push_back(bench::JsonRow{
        {"lineup", "claim"},
        {"flat_over_solo", flat_over_solo},
        {"tree_over_solo", tree_over_solo},
        {"tree_isolates",
         (tree_over_solo <= 1.5 && flat_over_solo > 3.0) ? 1.0
                                                         : 0.0},
    });
    bench::writeJson("BENCH_tenant_isolation.json",
                     "tenant_isolation", rows);
    std::cout << "\nWrote BENCH_tenant_isolation.json ("
              << (bench::smokeMode() ? "smoke" : "full")
              << " mode). Reading: the flat queue lets the spike "
                 "inflate the victim's p99 TTFT past 3x its solo "
                 "baseline (flat_over_solo), while the tenant tree "
                 "holds it within 1.5x (tree_over_solo) — the "
                 "fair-share subtree keeps serving the victim while "
                 "the aggressor's backlog drains at its own "
                 "share.\n";
    return 0;
}
