/**
 * @file
 * Shared harness pieces for the paper-reproduction benches: a
 * closed-loop serve runner, scheduler warm-start helpers, and load
 * sizing heuristics.
 */

#ifndef LIGHTLLM_BENCH_BENCH_COMMON_HH
#define LIGHTLLM_BENCH_BENCH_COMMON_HH

#include <string>
#include <utility>
#include <vector>

#include "core/scheduler_factory.hh"
#include "engine/engine_config.hh"
#include "metrics/report.hh"
#include "metrics/sla.hh"
#include "model/perf_model.hh"
#include "workload/datasets.hh"

namespace lightllm {
namespace bench {

/**
 * True when the PFS_BENCH_SMOKE environment variable is set and
 * non-empty. The `bench_smoke` ctest label runs every bench in this
 * mode; benches shrink their sweeps/datasets with smokeSize() so a
 * smoke pass finishes in seconds while full runs stay unchanged.
 */
bool smokeMode();

/** `full` normally; `smoke` under PFS_BENCH_SMOKE. */
std::size_t smokeSize(std::size_t full, std::size_t smoke);

/** Truncate a sweep vector to its first `smoke` entries in smoke
 *  mode (no-op otherwise). */
template <typename T>
std::vector<T>
smokeTruncate(std::vector<T> sweep, std::size_t smoke)
{
    if (smokeMode() && sweep.size() > smoke)
        sweep.resize(smoke);
    return sweep;
}

/** One JSON scalar cell: a number or a label string. */
struct JsonValue
{
    JsonValue(double value) : num(value) {}
    JsonValue(const char *value) : str(value), isString(true) {}
    JsonValue(std::string value)
        : str(std::move(value)), isString(true)
    {
    }

    double num = 0.0;
    std::string str;
    bool isString = false;
};

/** One flat JSON object, as ordered key → scalar pairs. */
using JsonRow = std::vector<std::pair<std::string, JsonValue>>;

/**
 * Write a bench result file CI can archive:
 * `{"bench": <name>, "smoke": <bool>, "rows": [{...}, ...]}`.
 * Numbers are emitted with enough precision to round-trip; label
 * strings are quoted (and must not need escaping). Fatal on I/O
 * failure.
 */
void writeJson(const std::string &path, const std::string &name,
               const std::vector<JsonRow> &rows);

/** One closed-loop serving run. */
struct ServeOptions
{
    std::size_t numClients = 32;

    /** Discard metrics until this many requests finished. */
    std::size_t warmupRequests = 0;

    /** Output lengths used to warm the Past-Future history window
     *  (a previous traffic window of the same service). */
    std::vector<TokenCount> warmHistory;

    engine::EngineConfig engineConfig;
};

/** Run `dataset` on (perf, scheduler) with closed-loop clients. */
metrics::RunReport
runClosedLoop(const model::PerfModel &perf,
              core::SchedulerConfig scheduler_config,
              const workload::Dataset &dataset,
              const ServeOptions &options);

/** Output lengths of a dataset (warm history for its service). */
std::vector<TokenCount> outputLengths(const workload::Dataset &ds);

/**
 * Client count that loads the system to `fraction` of its steady
 * concurrency capacity (capacity tokens / mean resident footprint).
 */
std::size_t sizeClients(const model::PerfModel &perf,
                        const workload::Dataset &dataset,
                        double fraction);

/** The paper's standard scheduler line-up for a dataset. */
struct SchedulerLineup
{
    std::string label;
    core::SchedulerConfig config;
};

/** Conservative / Aggressive(99%) / Past-Future(5%) as in Fig 7. */
std::vector<SchedulerLineup>
figure7Lineup(const workload::Dataset &warm_source);

} // namespace bench
} // namespace lightllm

#endif // LIGHTLLM_BENCH_BENCH_COMMON_HH
