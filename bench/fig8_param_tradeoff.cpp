/**
 * @file
 * Figure 8 reproduction: evicted-requests (%) vs decoding steps for
 * different scheduler parameterisations on a varying-distribution
 * load (ShareGPT-o1 followed by Distribution-1, -2, -3, matching
 * §5.3), plus the prediction-mode ablation called out in DESIGN.md.
 *
 * Expected shape (paper): conservative (overcommit sweep) and
 * aggressive (watermark sweep) trace Pareto-dominated curves — to
 * cut evictions they must pay many more decoding steps — while the
 * Past-Future reserved-ratio sweep sits near the theoretical
 * optimum corner with smoothly varying eviction rates.
 */

#include <iostream>

#include "base/str_util.hh"
#include "base/table.hh"
#include "bench_common.hh"

using namespace lightllm;
using namespace lightllm::bench;

namespace {

struct Point
{
    std::string family;
    std::string parameter;
    core::SchedulerConfig config;
};

core::SchedulerConfig
pastFutureMode(double reserved, core::PredictionMode mode)
{
    auto config = core::SchedulerConfig::pastFutureDefault(reserved);
    config.pastFuture.predictionMode = mode;
    return config;
}

} // namespace

int
main()
{
    std::cout << "# Figure 8: eviction/throughput trade-off under a "
                 "varying load (ShareGPT-o1 ++ Distribution-1..3)\n\n";

    const std::size_t part = smokeSize(350, 30);
    const auto mixed = workload::concatDatasets(
        "varying-load",
        {workload::makeShareGptO1(part, 81),
         workload::makeDistribution1(part, 82),
         workload::makeDistribution2(part, 83),
         workload::makeDistribution3(part, 84)});
    const auto history =
        workload::makeShareGptO1(smokeSize(1000, 120), 85);

    model::PerfModel perf(model::ModelSpec::llama2_7b(),
                          model::HardwareSpec::a100_80g());

    std::vector<Point> points;
    points.push_back({"Theoretical optimum", "-",
                      core::SchedulerConfig::oracle()});
    for (double reserved : {0.03, 0.05, 0.10, 0.15, 0.20}) {
        points.push_back({"Past-Future (ours)",
                          "reserved=" + formatPercent(reserved, 0),
                          core::SchedulerConfig::pastFutureDefault(
                              reserved)});
    }
    for (double watermark : {0.99, 0.95, 0.90, 0.80, 0.70, 0.60}) {
        points.push_back({"Aggressive",
                          "watermark=" + formatPercent(watermark, 0),
                          core::SchedulerConfig::aggressive(
                              watermark)});
    }
    for (double overcommit : {1.00, 1.10, 1.22, 1.50, 1.80, 2.20}) {
        points.push_back({"Conservative",
                          "overcommit=" +
                              formatPercent(overcommit, 0),
                          core::SchedulerConfig::conservative(
                              overcommit)});
    }
    // Prediction-mode ablation (DESIGN.md §4): why coupled sampling
    // is the default.
    points.push_back({"PF ablation: per-step sampling",
                      "reserved=5%",
                      pastFutureMode(
                          0.05,
                          core::PredictionMode::PerStepSample)});
    points.push_back({"PF ablation: tail-mean point est.",
                      "reserved=5%",
                      pastFutureMode(0.05,
                                     core::PredictionMode::TailMean)});
    points.push_back({"PF ablation: tail-quantile point est.",
                      "reserved=5%",
                      pastFutureMode(
                          0.05,
                          core::PredictionMode::TailQuantile)});

    points = smokeTruncate(std::move(points), 4);

    TextTable table({"Scheduler", "Parameter", "Decoding steps",
                     "Evicted reqs", "Consumed memory"});
    std::string previous_family;
    for (const auto &point : points) {
        if (!previous_family.empty() &&
            point.family != previous_family) {
            table.addSeparator();
        }
        previous_family = point.family;

        ServeOptions options;
        options.numClients = sizeClients(perf, mixed, 1.3);
        options.warmupRequests = smokeSize(150, 0);
        options.warmHistory = outputLengths(history);
        const auto report =
            runClosedLoop(perf, point.config, mixed, options);
        table.addRow({point.family, point.parameter,
                      formatCount(report.decodeSteps),
                      formatPercent(report.evictedReqRatio(), 2),
                      formatPercent(report.avgConsumedMemory, 1)});
    }
    table.print(std::cout);

    std::cout << "\nReading: down and to the left is better (few "
                 "evictions at few decoding steps). Baselines "
                 "cannot reach the Past-Future corner by parameter "
                 "tuning; the point-estimate ablations show why the "
                 "coupled sampling of completion stagger matters.\n";
    return 0;
}
