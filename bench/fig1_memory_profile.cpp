/**
 * @file
 * Figure 1 reproduction: current consumed memory (solid line in the
 * paper), true future required memory (dashed), and request
 * eviction rate for the three schedulers under a prefill-heavy and
 * a decode-heavy distribution.
 *
 * Expected shape (paper): the conservative scheduler leaves both
 * curves far below capacity; the aggressive scheduler pins consumed
 * memory at the watermark while its future requirement exceeds 100%
 * and its eviction rate explodes on the decode-heavy workload; the
 * Past-Future scheduler keeps future-required just below 100% with
 * near-zero evictions.
 */

#include <iostream>

#include "base/str_util.hh"
#include "base/table.hh"
#include "bench_common.hh"
#include "workload/datasets.hh"

using namespace lightllm;
using namespace lightllm::bench;

namespace {

void
profileDataset(const workload::Dataset &dataset,
               const workload::Dataset &history)
{
    model::PerfModel perf(model::ModelSpec::llama2_7b(),
                          model::HardwareSpec::a100_80g());

    std::cout << "### " << dataset.name << " (mean input "
              << formatDouble(dataset.meanInputLen(), 0)
              << ", mean output "
              << formatDouble(dataset.meanOutputLen(), 0)
              << " tokens)\n\n";

    const std::vector<SchedulerLineup> lineup =
        figure7Lineup(history);

    TextTable table({"Scheduler", "Consumed memory",
                     "Future required", "Evicted reqs",
                     "Timeline (future required, 12 samples)"});
    for (const auto &entry : lineup) {
        ServeOptions options;
        options.numClients = sizeClients(perf, dataset, 1.4);
        options.warmHistory = outputLengths(history);
        options.engineConfig.timeseriesInterval = 25;
        const auto report = runClosedLoop(perf, entry.config,
                                          dataset, options);

        // Downsample the future-required series to 12 points.
        std::string sparkline;
        const auto &series = report.timeseries;
        const std::size_t samples = 12;
        for (std::size_t s = 0; s < samples && !series.empty();
             ++s) {
            const std::size_t index =
                s * series.size() / samples;
            if (s > 0)
                sparkline += " ";
            sparkline += formatDouble(
                series[index].futureRequiredRatio * 100.0, 0);
        }

        table.addRow({entry.label,
                      formatPercent(report.avgConsumedMemory, 1),
                      formatPercent(report.avgFutureRequired, 1),
                      formatPercent(report.evictedReqRatio(), 1),
                      sparkline});
    }
    table.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main()
{
    std::cout << "# Figure 1: memory behaviour of request "
                 "schedulers (Llama-2-7B, A100-80G)\n\n";
    const std::size_t n = smokeSize(700, 60);
    const std::size_t history_n = smokeSize(1000, 120);

    // Prefill-heavy panel (left in the paper).
    profileDataset(workload::makeDistribution3(n, 301),
                   workload::makeDistribution3(history_n, 302));

    // Decode-heavy panel (right in the paper).
    profileDataset(workload::makeDistribution1(n, 303),
                   workload::makeDistribution1(history_n, 304));

    std::cout << "Reading: 'Future required' > 100% means the "
                 "running batch is guaranteed to outgrow memory "
                 "and evict; far below 100% means wasted memory.\n";
    return 0;
}
