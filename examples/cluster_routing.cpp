/**
 * @file
 * Multi-instance routing example — the paper's future-work proposal
 * (§7) made concrete.
 *
 * A heterogeneous fleet — two A100-80G and two A30 instances, the
 * paper's "dynamic service instance availability" setting — serves
 * a heavy-tailed chain-of-thought workload behind a router. The A30
 * has an eighth of the A100's KV capacity and half its bandwidth,
 * so load-oblivious routing drowns the small instances while the
 * big ones idle. The future-memory policy routes each request by
 * the *predicted* in-flight load relative to each instance's
 * capacity, using the router's own output-length history — the
 * Past-Future idea applied to placement.
 */

#include <iostream>
#include <memory>

#include "base/str_util.hh"
#include "base/table.hh"
#include "cluster/serving_cluster.hh"
#include "core/scheduler_factory.hh"
#include "metrics/sla.hh"
#include "model/perf_model.hh"
#include "workload/client_pool.hh"
#include "workload/datasets.hh"

using namespace lightllm;

namespace {

struct Outcome
{
    metrics::RunReport report;
    std::vector<std::size_t> routedCounts;
};

Outcome
routeWith(cluster::RoutingPolicy policy,
          const workload::Dataset &dataset,
          const workload::Dataset &history,
          std::size_t num_clients)
{
    auto scheduler_config =
        core::SchedulerConfig::pastFutureDefault(0.05);
    scheduler_config.pastFuture.seedOutputLen =
        dataset.maxNewTokens;
    for (const auto &request : history.requests) {
        scheduler_config.pastFuture.initialHistory.push_back(
            request.effectiveOutputLen());
    }

    std::vector<std::unique_ptr<engine::ServingEngine>> instances;
    const std::vector<model::HardwareSpec> fleet_hw = {
        model::HardwareSpec::a100_80g(),
        model::HardwareSpec::a100_80g(),
        model::HardwareSpec::a30(),
        model::HardwareSpec::a30(),
    };
    for (const auto &hw : fleet_hw) {
        model::PerfModel perf(model::ModelSpec::llama2_7b(), hw);
        instances.push_back(std::make_unique<engine::ServingEngine>(
            perf, core::makeScheduler(scheduler_config)));
    }
    cluster::ServingCluster fleet(std::move(instances), policy);
    std::vector<TokenCount> warm_lengths;
    for (const auto &request : history.requests)
        warm_lengths.push_back(request.effectiveOutputLen());
    fleet.warmRoutingHistory(warm_lengths);

    workload::ClosedLoopClientPool clients(num_clients, dataset,
                                           fleet);
    fleet.setOnFinish(
        [&](const workload::RequestSpec &spec, Tick tick) {
            clients.onRequestFinished(spec.id, tick);
        });
    clients.start();

    Outcome outcome;
    outcome.report = fleet.run();
    outcome.routedCounts = fleet.routedCounts();
    return outcome;
}

} // namespace

int
main()
{
    const std::size_t num_clients = 140;
    const auto dataset = workload::makeShareGptO1(800, 57);
    const auto history = workload::makeShareGptO1(1000, 58);
    const auto sla = metrics::SlaSpec::small7b13b();

    std::cout << "Heterogeneous cluster: 2x A100-80G + 2x A30 "
                 "(Llama-2-7B), "
              << num_clients << " closed-loop clients, "
              << dataset.requests.size()
              << " chain-of-thought requests\n\n";

    TextTable table({"Routing policy", "Goodput tok/s",
                     "Throughput tok/s", "p99 TTFT s",
                     "Requests per instance (A100/A100/A30/A30)"});
    for (const auto policy :
         {cluster::RoutingPolicy::RoundRobin,
          cluster::RoutingPolicy::LeastOutstandingTokens,
          cluster::RoutingPolicy::FutureMemory}) {
        const auto outcome =
            routeWith(policy, dataset, history, num_clients);
        std::string spread;
        for (std::size_t count : outcome.routedCounts) {
            if (!spread.empty())
                spread += " / ";
            spread += std::to_string(count);
        }
        table.addRow(
            {cluster::routingPolicyName(policy),
             formatDouble(outcome.report.goodputTokensPerSec(sla),
                          0),
             formatDouble(
                 outcome.report.throughputTokensPerSec(), 0),
             formatDouble(outcome.report.p99TtftSeconds(), 1),
             spread});
    }
    table.print(std::cout);

    std::cout << "\nRound-robin drowns the A30s (an eighth of the "
                 "A100's KV capacity); capacity-aware policies "
                 "recover most of the goodput, and future-memory "
                 "routing places *predicted* work, the paper's "
                 "future-work proposal end to end.\n";
    return 0;
}
