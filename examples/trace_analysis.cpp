/**
 * @file
 * Trace analysis walkthrough: should you trust recent history to
 * predict output lengths on *your* service?
 *
 * Feeds a service trace (synthetic here; swap in readTraceCsvFile
 * for production logs) through the Figure 3/4 window-similarity
 * analysis and reports whether the adjacent-window property the
 * Past-Future scheduler relies on holds, plus a suggested history
 * window size. Also round-trips the trace through the CSV format as
 * a demonstration of the I/O API.
 *
 * Usage: trace_analysis [path/to/trace.csv]
 */

#include <filesystem>
#include <iostream>

#include "base/str_util.hh"
#include "base/table.hh"
#include "stats/window_analysis.hh"
#include "workload/trace_gen.hh"
#include "workload/trace_io.hh"

using namespace lightllm;

int
main(int argc, char **argv)
{
    workload::Trace trace;
    if (argc > 1) {
        trace = workload::readTraceCsvFile(argv[1]);
        std::cout << "Loaded " << trace.records.size()
                  << " requests from " << argv[1] << "\n\n";
    } else {
        // Demo: a mixed API service with regime shifts, the hardest
        // case for history-based prediction.
        trace = workload::makeApiTrace(30000, 97);
        const auto path =
            std::filesystem::temp_directory_path() /
            "lightllm_demo_trace.csv";
        workload::writeTraceCsvFile(path.string(), trace);
        std::cout << "No trace given; synthesized an API-style "
                     "trace of "
                  << trace.records.size()
                  << " requests (CSV copy at " << path.string()
                  << ")\n\n";
    }

    const auto outputs = trace.outputLens();

    // Global structure (Figure 3 view).
    const auto matrix =
        stats::windowSimilarityMatrix(outputs, 1000);
    std::cout << "Window similarity (1000-request windows): "
              << "adjacent mean "
              << formatDouble(matrix.adjacentMean(), 3)
              << ", global mean "
              << formatDouble(matrix.globalMean(), 3) << "\n";
    if (matrix.adjacentMean() >
        matrix.globalMean() + 0.02) {
        std::cout << "-> distribution drifts over time, but "
                     "adjacent windows stay similar: history-based "
                     "prediction is applicable (use a modest "
                     "window).\n\n";
    } else {
        std::cout << "-> distribution is stable globally: "
                     "history-based prediction is applicable.\n\n";
    }

    // Window-size selection (Figure 4 view).
    TextTable table({"History window", "Diagonal similarity",
                     "Global similarity"});
    std::size_t best_size = 0;
    double best_score = -1.0;
    for (std::size_t history : {100, 200, 500, 1000, 2000, 5000}) {
        const auto result = stats::adjacentWindowSimilarity(
            outputs, history, 500);
        table.addRow({std::to_string(history),
                      formatDouble(result.diagonalMean, 3),
                      formatDouble(result.globalMean, 3)});
        if (result.diagonalMean > best_score) {
            best_score = result.diagonalMean;
            best_size = history;
        }
    }
    table.print(std::cout);
    std::cout << "\nSuggested PastFutureParams::windowSize = "
              << best_size << " (highest adjacent-window "
              << "similarity; the paper's default of 1000 is "
              << "usually within noise of this).\n";
    return 0;
}
