/**
 * @file
 * Long-document analysis service (the fourth workload the paper's
 * introduction motivates, alongside chat, code and multimodal).
 *
 * Mooncake-style traffic: prompts of ~8-10k tokens (whole
 * documents) with medium answers, arriving open-loop as a Poisson
 * stream. Document serving is *input-dominated*: a request's
 * resident KV is mostly prompt, so even the conservative policy's
 * worst-case reservation is only ~20% above reality and the
 * admission policies nearly agree — the prefill-heavy finding of
 * Figure 7's Distribution-3 panel taken to the extreme. What does
 * matter is that every admission is a ~1 s whole-document prefill
 * that stalls all running decodes, so split-fuse chunking is the
 * difference between meeting and missing the MTPOT SLA.
 *
 * The example also demonstrates the report-export API: per-request
 * CSV and a summary JSON for offline analysis.
 */

#include <filesystem>
#include <iostream>

#include "base/str_util.hh"
#include "base/table.hh"
#include "core/scheduler_factory.hh"
#include "engine/serving_engine.hh"
#include "metrics/report_io.hh"
#include "metrics/sla.hh"
#include "model/perf_model.hh"
#include "workload/arrivals.hh"
#include "workload/client_pool.hh"
#include "workload/trace_gen.hh"
#include "workload/trace_io.hh"

using namespace lightllm;

namespace {

metrics::RunReport
serveDocuments(const core::SchedulerConfig &scheduler_config,
               bool split_fuse, double arrival_rate_per_s)
{
    // 13B on 2x A100 for the long-context headroom.
    model::PerfModel perf(
        model::ModelSpec::llama2_13b(),
        model::HardwareSpec::a100_80g().withTensorParallel(2));

    const auto trace = workload::makeLongDocTrace(300, 23);
    const auto dataset = workload::traceToDataset(trace, 2048);
    const auto history = workload::makeLongDocTrace(1000, 24);

    core::SchedulerConfig config = scheduler_config;
    config.pastFuture.seedOutputLen = dataset.maxNewTokens;
    for (const auto &record : history.records) {
        config.pastFuture.initialHistory.push_back(
            std::min<TokenCount>(record.outputLen, 2048));
    }

    engine::EngineConfig engine_config;
    engine_config.splitFuse = split_fuse;
    engine_config.splitFuseChunk = 1024;

    engine::ServingEngine engine(
        perf, core::makeScheduler(config), engine_config);
    workload::submitPoissonArrivals(dataset, engine,
                                    arrival_rate_per_s, 67);
    return engine.run();
}

} // namespace

int
main()
{
    const double arrival_rate = 0.35;  // documents per second
    const auto sla = metrics::SlaSpec::small7b13b();

    std::cout << "Long-document analysis: Llama-2-13B on 2x "
                 "A100-80G, ~8-10k-token documents arriving at "
              << formatDouble(arrival_rate, 2) << " req/s "
              << "(open-loop Poisson)\n\n";

    struct Row
    {
        const char *label;
        core::SchedulerConfig config;
        bool splitFuse;
    };
    const std::vector<Row> rows = {
        {"Conservative", core::SchedulerConfig::conservative(),
         false},
        {"Aggressive (watermark=95%)",
         core::SchedulerConfig::aggressive(0.95), false},
        {"Past-Future (reserved=5%)",
         core::SchedulerConfig::pastFutureDefault(0.05), false},
        {"Past-Future + split-fuse",
         core::SchedulerConfig::pastFutureDefault(0.05), true},
    };

    TextTable table({"Configuration", "Goodput tok/s",
                     "SLA compliant", "p99 TTFT s", "p99 MTPOT s",
                     "Mem util"});
    metrics::RunReport exported;
    for (const auto &row : rows) {
        const auto report =
            serveDocuments(row.config, row.splitFuse, arrival_rate);
        table.addRow(
            {row.label,
             formatDouble(report.goodputTokensPerSec(sla), 1),
             formatPercent(report.slaCompliantFraction(sla), 1),
             formatDouble(report.p99TtftSeconds(), 2),
             formatDouble(report.p99MtpotSeconds(), 2),
             formatPercent(report.avgConsumedMemory, 1)});
        if (row.splitFuse)
            exported = report;
    }
    table.print(std::cout);

    // Export the winning configuration's report for offline
    // analysis (plotting, regression tracking).
    const auto csv_path = std::filesystem::temp_directory_path() /
        "lightllm_longdoc_requests.csv";
    metrics::writeRequestsCsvFile(csv_path.string(), exported, sla);
    std::cout << "\nPer-request records written to "
              << csv_path.string() << "\nSummary:\n";
    metrics::writeSummaryJson(std::cout, exported, sla);

    std::cout << "\nInput-dominated serving: admission policies "
                 "nearly agree (prompts dwarf outputs), but "
                 "whole-document prefills stall decodes past the "
                 "MTPOT limit - split-fuse chunking is what keeps "
                 "the SLA.\n";
    return 0;
}
