/**
 * @file
 * Quickstart: serve a chat workload with three schedulers and
 * compare goodput under the paper's SLA.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iostream>

#include "base/table.hh"
#include "base/str_util.hh"
#include "core/scheduler_factory.hh"
#include "engine/serving_engine.hh"
#include "metrics/sla.hh"
#include "model/perf_model.hh"
#include "workload/client_pool.hh"
#include "workload/datasets.hh"

using namespace lightllm;

namespace {

/** Run one scheduler over the workload with N closed-loop clients. */
metrics::RunReport
serveWith(const core::SchedulerConfig &scheduler_config,
          const workload::Dataset &dataset, std::size_t num_clients)
{
    // Llama-2-7B on a single A100-80G, as in the paper's Figure 7.
    model::PerfModel perf(model::ModelSpec::llama2_7b(),
                          model::HardwareSpec::a100_80g());

    // Warm-start the Past-Future history window as a long-running
    // service would be: seeded with max_new_tokens (§4) and then
    // fed the previous traffic window of the same service (the
    // adjacent-window similarity of Figure 3 is what makes this
    // history predictive).
    core::SchedulerConfig config = scheduler_config;
    config.pastFuture.seedOutputLen = dataset.maxNewTokens;
    const auto warm = workload::makeShareGptO1(1000, 7);
    for (const auto &request : warm.requests) {
        config.pastFuture.initialHistory.push_back(
            request.effectiveOutputLen());
    }

    engine::ServingEngine engine(perf, core::makeScheduler(config));

    workload::ClosedLoopClientPool clients(num_clients, dataset,
                                           engine);
    engine.setOnFinish([&](const workload::RequestSpec &spec,
                           Tick tick) {
        clients.onRequestFinished(spec.id, tick);
    });
    clients.start();

    return engine.run();
}

} // namespace

int
main()
{
    const std::size_t num_requests = 400;
    const std::size_t num_clients = 56;
    const auto dataset = workload::makeShareGptO1(num_requests, 42);
    const auto sla = metrics::SlaSpec::small7b13b();

    std::cout << "Workload: " << dataset.name << ", "
              << num_requests << " requests, mean input "
              << formatDouble(dataset.meanInputLen(), 0)
              << " tok, mean output "
              << formatDouble(dataset.meanOutputLen(), 0)
              << " tok, " << num_clients << " clients\n\n";

    const std::vector<core::SchedulerConfig> configs = {
        core::SchedulerConfig::conservative(),
        core::SchedulerConfig::aggressive(0.99),
        core::SchedulerConfig::pastFutureDefault(0.05),
        core::SchedulerConfig::oracle(),
    };

    TextTable table({"Scheduler", "Goodput tok/s", "Throughput tok/s",
                     "p99 TTFT s", "p99 MTPOT s", "Evicted",
                     "Mem util"});
    for (const auto &config : configs) {
        const auto report = serveWith(config, dataset, num_clients);
        table.addRow({report.schedulerName,
                      formatDouble(report.goodputTokensPerSec(sla), 1),
                      formatDouble(report.throughputTokensPerSec(), 1),
                      formatDouble(report.p99TtftSeconds(), 2),
                      formatDouble(report.p99MtpotSeconds(), 2),
                      formatPercent(report.evictedReqRatio(), 1),
                      formatPercent(report.avgConsumedMemory, 1)});
    }
    table.print(std::cout);

    std::cout << "\nThe Past-Future scheduler should match or beat "
                 "both baselines on goodput.\n";
    return 0;
}
