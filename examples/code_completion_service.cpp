/**
 * @file
 * Prefill-heavy domain example: a code-completion service.
 *
 * Code completion requests carry large prompts (file context) and
 * return short completions — the prefill-heavy regime of the
 * paper's Distribution-3 / Figure 1 (left). This example shows two
 * things on that workload:
 *
 *  1. scheduler choice: aggressive and Past-Future both beat the
 *     conservative policy (output memory is nearly irrelevant), and
 *  2. engine choice: split-fuse chunked prefill keeps the running
 *     batch's inter-token gaps small while long prompts stream in,
 *     at a small TTFT cost.
 */

#include <iostream>

#include "base/str_util.hh"
#include "base/table.hh"
#include "core/scheduler_factory.hh"
#include "engine/serving_engine.hh"
#include "metrics/sla.hh"
#include "model/perf_model.hh"
#include "workload/client_pool.hh"
#include "workload/trace_gen.hh"
#include "workload/trace_io.hh"

using namespace lightllm;

namespace {

metrics::RunReport
serveCodeCompletion(const core::SchedulerConfig &scheduler_config,
                    bool split_fuse, std::size_t num_clients)
{
    model::PerfModel perf(model::ModelSpec::llama2_13b(),
                          model::HardwareSpec::a100_80g());

    // Synthesize the service trace (in production this would be
    // readTraceCsvFile over real logs) and convert it to requests.
    const auto trace = workload::makeCodeCompletionTrace(500, 17);
    const auto dataset = workload::traceToDataset(trace, 512);
    const auto history = workload::makeCodeCompletionTrace(1000, 18);

    core::SchedulerConfig config = scheduler_config;
    config.pastFuture.seedOutputLen = dataset.maxNewTokens;
    for (const auto &record : history.records) {
        config.pastFuture.initialHistory.push_back(
            std::min<TokenCount>(record.outputLen, 512));
    }

    engine::EngineConfig engine_config;
    engine_config.splitFuse = split_fuse;
    engine_config.splitFuseChunk = 512;

    engine::ServingEngine engine(
        perf, core::makeScheduler(config), engine_config);
    workload::ClosedLoopClientPool clients(num_clients, dataset,
                                           engine);
    engine.setOnFinish(
        [&](const workload::RequestSpec &spec, Tick tick) {
            clients.onRequestFinished(spec.id, tick);
        });
    clients.start();
    return engine.run();
}

} // namespace

int
main()
{
    const std::size_t num_clients = 24;
    const auto sla = metrics::SlaSpec::small7b13b();

    std::cout << "Code-completion service: Llama-2-13B on "
                 "A100-80G, long prompts / short outputs, "
              << num_clients << " clients\n\n";

    struct Row
    {
        const char *label;
        core::SchedulerConfig config;
        bool splitFuse;
    };
    const std::vector<Row> rows = {
        {"Conservative", core::SchedulerConfig::conservative(),
         false},
        {"Aggressive (watermark=95%)",
         core::SchedulerConfig::aggressive(0.95), false},
        {"Past-Future (reserved=5%)",
         core::SchedulerConfig::pastFutureDefault(0.05), false},
        {"Past-Future + split-fuse",
         core::SchedulerConfig::pastFutureDefault(0.05), true},
    };

    TextTable table({"Configuration", "Goodput tok/s", "p99 TTFT s",
                     "p99 MTPOT s", "Mean TPOT ms", "Evicted"});
    for (const auto &row : rows) {
        const auto report =
            serveCodeCompletion(row.config, row.splitFuse,
                                num_clients);
        table.addRow(
            {row.label,
             formatDouble(report.goodputTokensPerSec(sla), 1),
             formatDouble(report.p99TtftSeconds(), 2),
             formatDouble(report.p99MtpotSeconds(), 2),
             formatDouble(report.meanTpotSeconds() * 1e3, 1),
             formatPercent(report.evictedReqRatio(), 1)});
    }
    table.print(std::cout);

    std::cout << "\nPrefill-heavy regime with a tight "
                 "max_new_tokens: admission policies nearly agree "
                 "(there is little output memory to mispredict), "
                 "and the binding constraint becomes prefill "
                 "interference - whole-prompt prefills stall the "
                 "running batch past the MTPOT limit. Split-fuse "
                 "chunked prefill removes those stalls and "
                 "multiplies goodput.\n";
    return 0;
}
