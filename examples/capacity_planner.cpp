/**
 * @file
 * Capacity planner: how many concurrent clients can a deployment
 * sustain under the SLA?
 *
 * A downstream-facing tool built on the public API: binary-search
 * the largest closed-loop client count at which the configured
 * (model, hardware, scheduler) keeps at least 95% of requests
 * SLA-compliant on the given workload profile. This is the sizing
 * question the paper's "future work" (auto-scaling on accurate
 * memory estimates) starts from.
 *
 * Usage: capacity_planner [7b|13b|70b]
 */

#include <iostream>
#include <string>

#include "base/str_util.hh"
#include "base/table.hh"
#include "core/scheduler_factory.hh"
#include "engine/serving_engine.hh"
#include "metrics/sla.hh"
#include "model/perf_model.hh"
#include "workload/client_pool.hh"
#include "workload/datasets.hh"

using namespace lightllm;

namespace {

/** SLA compliance of one closed-loop run at `clients`. */
double
complianceAt(const model::PerfModel &perf,
             const core::SchedulerConfig &scheduler_config,
             const workload::Dataset &dataset,
             const metrics::SlaSpec &sla, std::size_t clients)
{
    engine::ServingEngine engine(
        perf, core::makeScheduler(scheduler_config));
    workload::ClosedLoopClientPool pool(clients, dataset, engine);
    engine.setOnFinish(
        [&](const workload::RequestSpec &spec, Tick tick) {
            pool.onRequestFinished(spec.id, tick);
        });
    pool.start();
    const auto report = engine.run();
    return report.slaCompliantFraction(sla);
}

/** Largest client count with >= target compliance. */
std::size_t
planCapacity(const model::PerfModel &perf,
             const core::SchedulerConfig &scheduler_config,
             const workload::Dataset &dataset,
             const metrics::SlaSpec &sla, double target)
{
    std::size_t lo = 1;
    std::size_t hi = 2;
    // Exponential probe for an upper bound.
    while (complianceAt(perf, scheduler_config, dataset, sla, hi) >=
           target) {
        lo = hi;
        hi *= 2;
        if (hi > 4096)
            return lo;
    }
    while (hi - lo > 1) {
        const std::size_t mid = (lo + hi) / 2;
        if (complianceAt(perf, scheduler_config, dataset, sla,
                         mid) >= target) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    return lo;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string scale = argc > 1 ? argv[1] : "7b";

    model::ModelSpec spec;
    model::HardwareSpec hardware = model::HardwareSpec::a100_80g();
    metrics::SlaSpec sla = metrics::SlaSpec::small7b13b();
    if (scale == "7b") {
        spec = model::ModelSpec::llama2_7b();
    } else if (scale == "13b") {
        spec = model::ModelSpec::llama2_13b();
    } else if (scale == "70b") {
        spec = model::ModelSpec::llama2_70b();
        hardware = hardware.withTensorParallel(4);
        sla = metrics::SlaSpec::large70b();
    } else {
        std::cerr << "usage: capacity_planner [7b|13b|70b]\n";
        return 1;
    }
    const model::PerfModel perf(spec, hardware);

    std::cout << "Capacity planning for " << spec.name << " on "
              << hardware.name << " (token capacity "
              << formatCount(perf.tokenCapacity()) << ")\n"
              << "Target: >= 95% of requests meet the SLA.\n\n";

    // Chain-of-thought chat traffic: long, hard-to-predict outputs
    // (the paper's ShareGPT-o1 workload) — the regime where the
    // scheduler choice decides deployment capacity.
    const auto dataset = workload::makeShareGptO1(300, 5);
    const auto history = workload::makeShareGptO1(1000, 6);

    TextTable table({"Scheduler", "Max clients @ 90% SLA",
                     "@ 95% SLA", "@ 99% SLA"});
    std::vector<std::pair<std::string, core::SchedulerConfig>>
        configs = {
            {"Conservative", core::SchedulerConfig::conservative()},
            {"Aggressive (watermark=99%)",
             core::SchedulerConfig::aggressive(0.99)},
            {"Past-Future (reserved=5%)",
             core::SchedulerConfig::pastFutureDefault(0.05)},
        };
    for (auto &[label, config] : configs) {
        config.pastFuture.seedOutputLen = dataset.maxNewTokens;
        for (const auto &request : history.requests) {
            config.pastFuture.initialHistory.push_back(
                request.effectiveOutputLen());
        }
        std::vector<std::string> row{label};
        for (double target : {0.90, 0.95, 0.99}) {
            row.push_back(std::to_string(
                planCapacity(perf, config, dataset, sla, target)));
        }
        table.addRow(row);
    }
    table.print(std::cout);

    std::cout << "\nThe conservative scheduler forfeits most of "
                 "the hardware to worst-case reservations. The "
                 "aggressive and Past-Future schedulers pack "
                 "memory similarly, but tightening the compliance "
                 "target exposes the aggressive policy's eviction "
                 "cliff while Past-Future degrades gracefully.\n";
    return 0;
}
